"""Immutable LSM segments: one static block-AD database per sorted run.

A segment is the durable unit of the LSM store: a frozen ``(rows, pids)``
pair with prebuilt sorted columns, written once at flush or compaction
time and never modified.  Queries treat each segment exactly like
:class:`~repro.core.dynamic.DynamicMatchDatabase` treats its base: ask
the static :class:`~repro.core.ad_block.BlockADEngine` for enough
answers to survive tombstone filtering, map answer-set row indices back
to stable point ids, and compute the exact per-candidate match profiles
— so the merged stream stays bit-identical to the naive oracle.

``pids`` are sorted ascending.  Point ids are assigned monotonically at
insert time and compaction merges whole segments, so sorting by pid is
free at build time and buys ``searchsorted`` membership tests (tombstone
counting, point lookup) at query time.

On disk a segment is the same ``.npz``-with-JSON-header container as
:mod:`repro.io`: raw rows, the pid array, and the prebuilt sorted
columns (installed on load via
:meth:`~repro.sorted_lists.SortedColumns.from_prebuilt`, no re-sort).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.ad_block import BlockADEngine
from ..core.types import SearchStats
from ..errors import StorageError
from ..sorted_lists import SortedColumns

__all__ = ["Segment", "SEGMENT_MAGIC", "SEGMENT_FORMAT_VERSION"]

SEGMENT_MAGIC = "repro-lsm-segment"
SEGMENT_FORMAT_VERSION = 1


class Segment:
    """One immutable sorted run: frozen rows, stable pids, lazy engine."""

    def __init__(
        self,
        segment_id: int,
        level: int,
        rows: np.ndarray,
        pids: np.ndarray,
        columns: Optional[SortedColumns] = None,
    ) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        pids = np.ascontiguousarray(pids, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[0] < 1:
            raise StorageError(
                f"segment rows must be a non-empty 2d array; got {rows.shape}"
            )
        if pids.shape != (rows.shape[0],):
            raise StorageError(
                f"segment pids shape {pids.shape} does not match "
                f"{rows.shape[0]} rows"
            )
        if np.any(np.diff(pids) <= 0):
            raise StorageError("segment pids must be strictly ascending")
        self.segment_id = int(segment_id)
        self.level = int(level)
        self.rows = rows
        self.pids = pids
        self._columns = columns
        self._engine: Optional[BlockADEngine] = None

    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        return self.rows.shape[0]

    @property
    def dimensionality(self) -> int:
        return self.rows.shape[1]

    @property
    def filename(self) -> str:
        return f"seg-{self.segment_id:08d}.npz"

    def contains_pid(self, pid: int) -> bool:
        position = int(np.searchsorted(self.pids, pid))
        return position < self.pids.shape[0] and int(self.pids[position]) == pid

    def get_point(self, pid: int) -> Optional[np.ndarray]:
        """The coordinates stored for ``pid``, or ``None`` if absent."""
        position = int(np.searchsorted(self.pids, pid))
        if position < self.pids.shape[0] and int(self.pids[position]) == pid:
            return self.rows[position].copy()
        return None

    def dead_count(self, tombstones: set) -> int:
        """How many of this segment's rows are tombstoned."""
        if not tombstones:
            return 0
        if len(tombstones) < 16:
            return sum(1 for pid in tombstones if self.contains_pid(pid))
        mask = np.isin(self.pids, np.fromiter(tombstones, dtype=np.int64))
        return int(mask.sum())

    def _get_engine(self) -> BlockADEngine:
        # The inner engine stays uninstrumented so logical query counters
        # are not double-counted — the store's own spans time it.
        if self._engine is None:
            if self._columns is not None:
                self._engine = BlockADEngine(self._columns)
            else:
                self._engine = BlockADEngine(self.rows)
                self._columns = self._engine.columns
        return self._engine

    @property
    def columns(self) -> SortedColumns:
        self._get_engine()
        return self._columns

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def collect_candidates(
        self,
        query: np.ndarray,
        k: int,
        n0: int,
        n1: int,
        tombstones: set,
        per_n: Dict[int, List[Tuple[float, int]]],
        stats: SearchStats,
    ) -> SearchStats:
        """Add this segment's exact candidates to the per-n streams.

        Over-fetches by the number of *this segment's* tombstoned rows
        (not the global tombstone count), so filtering can never starve
        an n of its k survivors.
        """
        segment_k = min(self.cardinality, k + self.dead_count(tombstones))
        if segment_k < 1:
            return stats
        result = self._get_engine().frequent_k_n_match(
            query, segment_k, (n0, n1), keep_answer_sets=True
        )
        stats = stats.merge(result.stats)
        profiles: Dict[int, np.ndarray] = {}
        for n, row_indexes in result.answer_sets.items():
            for row_index in row_indexes:
                pid = int(self.pids[row_index])
                if pid in tombstones:
                    continue
                if row_index not in profiles:
                    profiles[row_index] = np.sort(
                        np.abs(self.rows[row_index] - query)
                    )
                per_n[n].append((float(profiles[row_index][n - 1]), pid))
        return stats

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, os.PathLike]) -> str:
        """Write the segment into ``directory``, fsync'd; returns the name.

        The file is written to a temporary name and renamed into place,
        so a crash mid-write leaves an orphan temp file (cleaned on
        recovery), never a half-written segment under the real name.
        """
        directory = os.fspath(directory)
        columns = self.columns
        header = json.dumps(
            {
                "magic": SEGMENT_MAGIC,
                "version": SEGMENT_FORMAT_VERSION,
                "segment_id": self.segment_id,
                "level": self.level,
                "cardinality": self.cardinality,
                "dimensionality": self.dimensionality,
            }
        )
        final_path = os.path.join(directory, self.filename)
        tmp_path = final_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            np.savez(
                handle,
                header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
                rows=self.rows,
                pids=self.pids,
                sorted_values=columns.values_matrix,
                sorted_ids=columns.ids_matrix,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, final_path)
        return self.filename

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "Segment":
        """Load a segment file, verifying header and shapes."""
        path = os.fspath(path)
        try:
            archive = np.load(path)
        except (OSError, ValueError) as error:
            raise StorageError(
                f"cannot read segment file {path!r}: {error}"
            ) from error
        try:
            required = {"header", "rows", "pids", "sorted_values", "sorted_ids"}
            missing = required - set(archive.files)
            if missing:
                raise StorageError(
                    f"{path!r} is not a repro segment file "
                    f"(missing {sorted(missing)})"
                )
            try:
                header = json.loads(bytes(archive["header"]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise StorageError(
                    f"{path!r} has a corrupt segment header"
                ) from error
            if header.get("magic") != SEGMENT_MAGIC:
                raise StorageError(f"{path!r} is not a repro segment file")
            if header.get("version") != SEGMENT_FORMAT_VERSION:
                raise StorageError(
                    f"{path!r} uses segment format version "
                    f"{header.get('version')}; this build reads version "
                    f"{SEGMENT_FORMAT_VERSION}"
                )
            rows = np.ascontiguousarray(archive["rows"], dtype=np.float64)
            pids = np.ascontiguousarray(archive["pids"], dtype=np.int64)
            c = header.get("cardinality")
            d = header.get("dimensionality")
            if rows.shape != (c, d):
                raise StorageError(
                    f"{path!r}: rows shape {rows.shape} does not match "
                    f"header ({c}, {d})"
                )
            values = np.ascontiguousarray(
                archive["sorted_values"], dtype=np.float64
            )
            ids = np.ascontiguousarray(archive["sorted_ids"], dtype=np.int64)
            if values.shape != (d, c) or ids.shape != (d, c):
                raise StorageError(
                    f"{path!r}: sorted-column shapes are inconsistent"
                )
            columns = SortedColumns.from_prebuilt(rows, values, ids)
            return cls(
                header.get("segment_id", 0),
                header.get("level", 0),
                rows,
                pids,
                columns=columns,
            )
        finally:
            archive.close()
