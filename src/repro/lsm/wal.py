"""The write-ahead log: durable mutation records with a torn-tail contract.

Every mutation against :class:`~repro.lsm.store.LsmMatchDatabase` is
appended here *before* it touches the in-memory state, so a crash at any
instant loses at most the suffix of the log that never reached the disk.
The format is deliberately boring:

``file header`` (16 bytes)
    ``8s`` magic ``b"reprowal"`` · ``<I`` format version · ``<I`` reserved
    (zero).  A foreign or stale file fails loudly at open.

``record`` (framed, little-endian)
    ``<I`` payload length · ``<I`` CRC-32 of the payload · payload.

``payload``
    ``B`` opcode (1 = insert, 2 = delete) · ``<Q`` generation · ``<q``
    point id · for inserts ``<I`` dimensionality followed by that many
    ``<d`` float64 coordinates.

Each record carries the :attr:`generation` the mutation was applied
under, which makes replay *idempotent*: recovery applies only records
whose generation exceeds the manifest's ``persisted_generation``
watermark, so a crash between flushing a segment and resetting the log
cannot double-apply the flushed prefix.

The reader (:func:`read_wal`) trusts nothing.  It stops at the first
frame that is incomplete, overlong, CRC-mismatched or semantically
malformed and reports the length of the valid prefix — recovery then
truncates the torn tail (:func:`truncate_wal`) and serves exactly the
durable mutations, never a half-written one.

``fsync`` batching is the caller's policy: :meth:`WalWriter.append`
writes through an unbuffered file object (so an in-process crash cannot
lose Python-buffered bytes) and :meth:`WalWriter.sync` forces the OS
cache to the device.  The store syncs every ``wal_sync_interval``
records and before every flush/manifest write.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, NamedTuple, Optional, Tuple, Union

import numpy as np

from ..errors import StorageError
from ..storage.fault import FaultSchedule, InjectedCrashError

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "OP_INSERT",
    "OP_DELETE",
    "WalRecord",
    "WalScan",
    "WalWriter",
    "encode_record",
    "read_wal",
    "truncate_wal",
    "wal_info",
]

WAL_MAGIC = b"reprowal"
WAL_VERSION = 1

OP_INSERT = 1
OP_DELETE = 2

_HEADER = struct.Struct("<8sII")
_FRAME = struct.Struct("<II")
_RECORD_HEAD = struct.Struct("<BQq")
_DIM = struct.Struct("<I")

#: Upper bound on a single payload, far above any real record (a
#: million-dimension insert) — rejects garbage lengths in a torn frame
#: before attempting a giant read.
_MAX_PAYLOAD = 64 * 1024 * 1024


class WalRecord(NamedTuple):
    """One decoded mutation: ``coords`` is ``None`` for deletes."""

    op: int
    generation: int
    pid: int
    coords: Optional[np.ndarray]


class WalScan(NamedTuple):
    """The result of reading a log: the valid prefix and its boundary."""

    records: List[WalRecord]
    valid_bytes: int
    total_bytes: int
    torn: bool
    reason: str


def encode_record(
    op: int, generation: int, pid: int, coords: Optional[np.ndarray] = None
) -> bytes:
    """One framed record (length + CRC + payload), ready to append."""
    if op == OP_INSERT:
        if coords is None:
            raise StorageError("insert records require coordinates")
        flat = np.ascontiguousarray(coords, dtype=np.float64).ravel()
        payload = (
            _RECORD_HEAD.pack(op, generation, pid)
            + _DIM.pack(flat.shape[0])
            + flat.tobytes()
        )
    elif op == OP_DELETE:
        payload = _RECORD_HEAD.pack(op, generation, pid)
    else:
        raise StorageError(f"unknown WAL opcode {op}")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> WalRecord:
    """Decode one CRC-verified payload; raises ``StorageError`` if torn."""
    if len(payload) < _RECORD_HEAD.size:
        raise StorageError("payload shorter than the record head")
    op, generation, pid = _RECORD_HEAD.unpack_from(payload, 0)
    if op == OP_DELETE:
        if len(payload) != _RECORD_HEAD.size:
            raise StorageError("delete payload has trailing bytes")
        return WalRecord(op, generation, pid, None)
    if op == OP_INSERT:
        offset = _RECORD_HEAD.size
        if len(payload) < offset + _DIM.size:
            raise StorageError("insert payload missing dimensionality")
        (dim,) = _DIM.unpack_from(payload, offset)
        offset += _DIM.size
        expected = offset + 8 * dim
        if dim < 1 or len(payload) != expected:
            raise StorageError("insert payload length does not match dim")
        coords = np.frombuffer(payload, dtype="<f8", count=dim, offset=offset)
        return WalRecord(op, generation, pid, coords.astype(np.float64))
    raise StorageError(f"unknown WAL opcode {op}")


class WalWriter:
    """Append-only writer over one log file.

    Creates the file (with its header) if absent, otherwise appends.
    ``fault`` is an optional :class:`~repro.storage.fault.FaultSchedule`
    whose torn-write budget is honoured byte-exactly: the on-disk file
    ends with precisely the prefix the "power cut" let through.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        fault: Optional[FaultSchedule] = None,
    ) -> None:
        self.path = os.fspath(path)
        self._fault = fault
        self.appended = 0
        self.bytes_written = 0
        self.syncs = 0
        self._unsynced = 0
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        # buffering=0: bytes hit the OS on write(), so a Python-level
        # crash (including an injected one) never loses buffered data.
        self._handle = open(self.path, "ab", buffering=0)
        if fresh:
            self._handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0))
            self.sync()

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self.path)

    @property
    def unsynced(self) -> int:
        """Records appended since the last :meth:`sync`."""
        return self._unsynced

    def append(
        self,
        op: int,
        generation: int,
        pid: int,
        coords: Optional[np.ndarray] = None,
    ) -> int:
        """Append one record; returns its framed size in bytes."""
        frame = encode_record(op, generation, pid, coords)
        if self._fault is not None:
            persisted, torn = self._fault.wal_write(frame)
            if torn:
                self._handle.write(persisted)
                os.fsync(self._handle.fileno())
                raise InjectedCrashError(
                    f"injected torn WAL write: {len(persisted)} of "
                    f"{len(frame)} bytes persisted"
                )
        self._handle.write(frame)
        self.appended += 1
        self.bytes_written += len(frame)
        self._unsynced += 1
        return len(frame)

    def sync(self) -> None:
        """Force appended records to the device."""
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._unsynced = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _iter_frames(blob: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(frame_end_offset, payload)`` for every intact frame."""
    offset = _HEADER.size
    total = len(blob)
    while offset < total:
        if total - offset < _FRAME.size:
            raise StorageError("torn frame header")
        length, crc = _FRAME.unpack_from(blob, offset)
        if length > _MAX_PAYLOAD:
            raise StorageError(f"implausible payload length {length}")
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            raise StorageError("torn payload")
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            raise StorageError("payload CRC mismatch")
        yield end, payload
        offset = end


def read_wal(path: Union[str, os.PathLike]) -> WalScan:
    """Scan a log, returning every durable record and the torn boundary.

    A missing or header-less file is an error (the store always creates
    the log with its header before the first append); a log whose *tail*
    fails to decode is not — the scan stops at the last intact record
    and flags ``torn`` with the failure reason.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise StorageError(f"cannot read WAL {path!r}: {error}") from error
    if len(blob) < _HEADER.size:
        raise StorageError(f"{path!r} is too short to be a WAL")
    magic, version, _reserved = _HEADER.unpack_from(blob, 0)
    if magic != WAL_MAGIC:
        raise StorageError(f"{path!r} is not a repro WAL")
    if version != WAL_VERSION:
        raise StorageError(
            f"{path!r} uses WAL version {version}; this build reads "
            f"version {WAL_VERSION}"
        )
    records: List[WalRecord] = []
    valid = _HEADER.size
    torn = False
    reason = ""
    try:
        for end, payload in _iter_frames(blob):
            records.append(_decode_payload(payload))
            valid = end
    except StorageError as error:
        torn = True
        reason = str(error)
    return WalScan(records, valid, len(blob), torn, reason)


def truncate_wal(path: Union[str, os.PathLike], valid_bytes: int) -> None:
    """Drop a torn tail, keeping exactly the valid prefix, durably."""
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        os.fsync(handle.fileno())


def wal_info(path: Union[str, os.PathLike]) -> dict:
    """A JSON-friendly summary of one log file (used by ``repro wal-info``)."""
    scan = read_wal(path)
    inserts = sum(1 for r in scan.records if r.op == OP_INSERT)
    deletes = len(scan.records) - inserts
    generations = [r.generation for r in scan.records]
    return {
        "path": os.fspath(path),
        "total_bytes": scan.total_bytes,
        "valid_bytes": scan.valid_bytes,
        "torn": scan.torn,
        "torn_reason": scan.reason,
        "records": len(scan.records),
        "inserts": inserts,
        "deletes": deletes,
        "min_generation": min(generations) if generations else None,
        "max_generation": max(generations) if generations else None,
    }
