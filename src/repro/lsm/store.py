"""The durable LSM store: exact k-n-match over a crash-surviving point set.

:class:`LsmMatchDatabase` grows the two-tier
:class:`~repro.core.dynamic.DynamicMatchDatabase` (one base, one buffer,
stop-the-world compaction) into a write-heavy, restart-surviving store:

* a :class:`~repro.lsm.memtable.Memtable` absorbs inserts;
* flushes freeze it into leveled immutable
  :class:`~repro.lsm.segment.Segment` files (each a static block-AD
  database over prebuilt sorted columns);
* every mutation is WAL-logged (:mod:`repro.lsm.wal`) *before* it is
  applied, so :meth:`recover` rebuilds the exact live set after a crash
  — including a torn WAL tail, which is truncated to the last intact
  record;
* compaction merges an overflowing level into the next one on a
  background worker (:class:`~repro.lsm.compactor.Compactor`) or
  synchronously via :meth:`compact`, publishing the new level through a
  single list swap under the store lock — readers are never blocked by
  the merge itself.

**Exactness.**  Queries mirror the dynamic facade: each segment's
static engine over-fetches enough to survive that segment's tombstones,
candidates carry exact per-point match profiles, and all streams (one
per segment plus the memtable) merge under the canonical
``(difference, id)`` order — bit-identical to the naive oracle over the
live set at every instant, mid-compaction and after recovery included.

**Durability protocol.**  The directory holds ``MANIFEST.json`` (atomic
tmp + rename + fsync), ``wal.log`` and ``segments/seg-*.npz``.  The
manifest's ``persisted_generation`` is the watermark of durable state:
WAL replay applies only records with a strictly larger generation, so a
crash between flushing a segment and resetting the log cannot
double-apply the flushed prefix.  See ``docs/durability.md`` for the
full protocol and crash-window argument.

**Generations.**  Every mutation bumps the monotonic :attr:`generation`
the serve-layer result cache keys on.  Generations are reserved in
durable blocks (hi-lo): the manifest's ``generation_reserved`` always
bounds every generation ever handed out, and recovery restarts *past*
the old reservation — so a generation observed after a crash is
strictly greater than any observed before it, and a stale cache can
never alias pre-crash entries onto the recovered store.  Compaction
does **not** bump the generation: it preserves the live set exactly, so
every cached answer keyed at the current generation stays correct.

Thread-safety matches the dynamic facade: one RLock serialises
mutations and queries; compaction holds it only to snapshot its inputs
and to swap in its output.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core import validation
from ..core.types import (
    FrequentMatchResult,
    MatchResult,
    SearchStats,
    rank_by_frequency,
)
from ..errors import EmptyDatabaseError, StorageError, ValidationError
from ..storage.fault import FaultSchedule
from .compactor import Compactor
from .memtable import Memtable
from .segment import Segment
from .wal import OP_DELETE, OP_INSERT, WalWriter, read_wal, truncate_wal

__all__ = ["LsmMatchDatabase", "MANIFEST_NAME", "WAL_NAME", "SEGMENT_DIR"]

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
SEGMENT_DIR = "segments"

_MANIFEST_MAGIC = "repro-lsm"
_MANIFEST_VERSION = 1


class LsmMatchDatabase:
    """Exact k-n-match over a durable, mutable, leveled point set."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        dimensionality: Optional[int] = None,
        memtable_flush_rows: int = 256,
        level_fanout: int = 4,
        wal_sync_interval: int = 32,
        generation_reserve: int = 256,
        auto_compact: bool = True,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
        fault: Optional[FaultSchedule] = None,
    ) -> None:
        if memtable_flush_rows < 1:
            raise ValidationError(
                f"memtable_flush_rows must be >= 1; got {memtable_flush_rows}"
            )
        if level_fanout < 2:
            raise ValidationError(
                f"level_fanout must be >= 2; got {level_fanout}"
            )
        if wal_sync_interval < 1:
            raise ValidationError(
                f"wal_sync_interval must be >= 1; got {wal_sync_interval}"
            )
        if generation_reserve < 1:
            raise ValidationError(
                f"generation_reserve must be >= 1; got {generation_reserve}"
            )
        self.directory = os.fspath(path)
        self.memtable_flush_rows = memtable_flush_rows
        self.level_fanout = level_fanout
        self.wal_sync_interval = wal_sync_interval
        self.generation_reserve = generation_reserve
        self._metrics = metrics
        self._spans = spans
        self._fault = fault
        self._lock = threading.RLock()
        # Serialises compactions (manual vs background) without holding
        # the store lock across a merge.
        self._compact_lock = threading.Lock()

        self._segments: List[Segment] = []
        self._tombstones: set = set()
        self._next_pid = 0
        self._next_segment_id = 0
        self._generation = 0
        self._generation_reserved = 0
        self._persisted_generation = 0
        self.compactions = 0
        self.flushes = 0
        self.user_bytes_inserted = 0
        self.segment_bytes_written = 0
        self.last_compaction: Optional[dict] = None
        self.recovered_torn_wal = False

        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            self._open_existing(dimensionality)
        else:
            if dimensionality is None:
                raise StorageError(
                    f"{self.directory!r} has no manifest; pass dimensionality "
                    f"to create a new store"
                )
            self._create_fresh(int(dimensionality))

        self._compactor: Optional[Compactor] = None
        if auto_compact:
            self._compactor = Compactor(self)
            self._compactor.start()

    # ------------------------------------------------------------------
    # open / create / recover
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls, path: Union[str, os.PathLike], **kwargs
    ) -> "LsmMatchDatabase":
        """Open an existing store directory, replaying its WAL.

        Exactly the constructor without a ``dimensionality`` — a missing
        manifest is an error rather than an invitation to create.
        """
        kwargs.pop("dimensionality", None)
        return cls(path, dimensionality=None, **kwargs)

    def _create_fresh(self, dimensionality: int) -> None:
        if dimensionality < 1:
            raise ValidationError(
                f"dimensionality must be >= 1; got {dimensionality}"
            )
        self._dimensionality = dimensionality
        os.makedirs(self.directory, exist_ok=True)
        os.makedirs(os.path.join(self.directory, SEGMENT_DIR), exist_ok=True)
        self._memtable = Memtable(dimensionality)
        self._generation_reserved = self.generation_reserve
        self._write_manifest()
        self._wal = WalWriter(self._wal_path, fault=self._fault)

    def _open_existing(self, dimensionality: Optional[int]) -> None:
        manifest = self._read_manifest()
        stored_dim = manifest["dimensionality"]
        if dimensionality is not None and dimensionality != stored_dim:
            raise ValidationError(
                f"dimensionality {dimensionality} does not match the "
                f"store's {stored_dim}"
            )
        self._dimensionality = int(stored_dim)
        self._memtable = Memtable(self._dimensionality)
        self._next_pid = int(manifest["next_pid"])
        self._next_segment_id = int(manifest["next_segment_id"])
        self._persisted_generation = int(manifest["persisted_generation"])
        self._tombstones = set(int(t) for t in manifest["tombstones"])
        self.compactions = int(manifest.get("compactions", 0))
        self.flushes = int(manifest.get("flushes", 0))
        self.user_bytes_inserted = int(manifest.get("user_bytes_inserted", 0))
        self.segment_bytes_written = int(
            manifest.get("segment_bytes_written", 0)
        )
        self.last_compaction = manifest.get("last_compaction")

        segment_dir = os.path.join(self.directory, SEGMENT_DIR)
        os.makedirs(segment_dir, exist_ok=True)
        referenced = set()
        for entry in manifest["segments"]:
            filename = entry["file"]
            referenced.add(filename)
            segment_path = os.path.join(segment_dir, filename)
            segment = Segment.load(segment_path)
            if segment.segment_id != entry["segment_id"]:
                raise StorageError(
                    f"{segment_path!r}: segment id {segment.segment_id} does "
                    f"not match manifest entry {entry['segment_id']}"
                )
            segment.level = int(entry["level"])
            self._segments.append(segment)
        # Orphans: segment files written by a flush/compaction that died
        # before its manifest swap, and half-written temporaries.  The
        # manifest never referenced them, so deleting them loses nothing.
        for name in sorted(os.listdir(segment_dir)):
            if name not in referenced:
                os.remove(os.path.join(segment_dir, name))

        # WAL replay: only records past the durable watermark, and only
        # mutations that still make sense against the manifest state
        # (a delete for a row a pre-crash compaction already dropped is
        # a no-op, not a phantom tombstone).
        if os.path.exists(self._wal_path):
            scan = read_wal(self._wal_path)
            if scan.torn:
                truncate_wal(self._wal_path, scan.valid_bytes)
                self.recovered_torn_wal = True
            max_replayed_pid = -1
            for record in scan.records:
                if record.generation <= self._persisted_generation:
                    continue
                if record.op == OP_INSERT:
                    if record.coords.shape[0] != self._dimensionality:
                        raise StorageError(
                            f"WAL insert for pid {record.pid} has "
                            f"{record.coords.shape[0]} dimensions; the store "
                            f"has {self._dimensionality}"
                        )
                    if not self._pid_present(record.pid):
                        self._memtable.add(
                            record.coords.astype(np.float64), record.pid
                        )
                    max_replayed_pid = max(max_replayed_pid, record.pid)
                elif record.op == OP_DELETE:
                    if (
                        self._pid_present(record.pid)
                        and record.pid not in self._tombstones
                    ):
                        self._tombstones.add(record.pid)
            self._next_pid = max(self._next_pid, max_replayed_pid + 1)

        # Hi-lo generation restart: everything handed out before the
        # crash was <= the durable reservation, so starting past it
        # keeps the generation strictly monotonic across the crash.
        old_reserved = int(manifest["generation_reserved"])
        self._generation = old_reserved + 1
        self._generation_reserved = self._generation + self.generation_reserve
        self._write_manifest()
        self._wal = WalWriter(self._wal_path, fault=self._fault)

    def _pid_present(self, pid: int) -> bool:
        if pid in self._memtable:
            return True
        return any(segment.contains_pid(pid) for segment in self._segments)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @property
    def _wal_path(self) -> str:
        return os.path.join(self.directory, WAL_NAME)

    def _read_manifest(self) -> dict:
        path = os.path.join(self.directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"cannot read LSM manifest {path!r}: {error}"
            ) from error
        if manifest.get("magic") != _MANIFEST_MAGIC:
            raise StorageError(f"{path!r} is not a repro LSM manifest")
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StorageError(
                f"{path!r} uses manifest version {manifest.get('version')}; "
                f"this build reads version {_MANIFEST_VERSION}"
            )
        return manifest

    def _write_manifest(self) -> None:
        manifest = {
            "magic": _MANIFEST_MAGIC,
            "version": _MANIFEST_VERSION,
            "dimensionality": self._dimensionality,
            "next_pid": self._next_pid,
            "next_segment_id": self._next_segment_id,
            "persisted_generation": self._persisted_generation,
            "generation_reserved": self._generation_reserved,
            "tombstones": sorted(int(t) for t in self._tombstones),
            "segments": [
                {
                    "segment_id": segment.segment_id,
                    "level": segment.level,
                    "file": segment.filename,
                    "cardinality": segment.cardinality,
                }
                for segment in self._segments
            ],
            "compactions": self.compactions,
            "flushes": self.flushes,
            "user_bytes_inserted": self.user_bytes_inserted,
            "segment_bytes_written": self.segment_bytes_written,
            "last_compaction": self.last_compaction,
            "wal": WAL_NAME,
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        directory_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; strictly increases across crashes.

        Same contract as the dynamic facade — the serve result cache
        keys on it — plus the durable-reservation guarantee: no
        generation observed after :meth:`recover` was ever observable
        before the crash.
        """
        return self._generation

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    def set_metrics(self, registry) -> None:
        """Install (or remove, with ``None``) a metrics registry."""
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    def set_spans(self, collector) -> None:
        """Install (or remove, with ``None``) a span collector."""
        self._spans = collector

    @property
    def cardinality(self) -> int:
        """Number of live (non-deleted) points.

        Every tombstone references exactly one stored row (deletes
        validate liveness; recovery drops deletes for rows a pre-crash
        compaction already removed), so the subtraction is exact.
        """
        with self._lock:
            total = sum(s.cardinality for s in self._segments)
            return total + len(self._memtable) - len(self._tombstones)

    @property
    def memtable_size(self) -> int:
        with self._lock:
            return len(self._memtable)

    @property
    def tombstone_count(self) -> int:
        with self._lock:
            return len(self._tombstones)

    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def wal_bytes(self) -> int:
        return self._wal.size_bytes

    @property
    def write_amplification(self) -> float:
        """Segment bytes written per byte of user data inserted."""
        with self._lock:
            if self.user_bytes_inserted == 0:
                return 0.0
            return self.segment_bytes_written / self.user_bytes_inserted

    def __len__(self) -> int:
        return self.cardinality

    def __contains__(self, pid: int) -> bool:
        with self._lock:
            if pid in self._tombstones:
                return False
            return self._pid_present(pid)

    def get_point(self, pid: int) -> np.ndarray:
        """The coordinates of a live point."""
        with self._lock:
            if pid in self._tombstones:
                raise ValidationError(f"point {pid} was deleted")
            if pid in self._memtable:
                return self._memtable.get_point(pid)
            for segment in self._segments:
                coords = segment.get_point(pid)
                if coords is not None:
                    return coords
            raise ValidationError(f"unknown point id {pid}")

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """All live points as ``(rows, pids)`` in ascending-pid order."""
        with self._lock:
            rows = [s.rows for s in self._segments]
            pids = [s.pids for s in self._segments]
            mem_rows, mem_pids = self._memtable.live_arrays(set())
            rows.append(mem_rows)
            pids.append(mem_pids)
            all_rows = np.vstack(rows)
            all_pids = np.concatenate(pids)
            if self._tombstones:
                live = ~np.isin(
                    all_pids, np.fromiter(self._tombstones, dtype=np.int64)
                )
                all_rows, all_pids = all_rows[live], all_pids[live]
            order = np.argsort(all_pids)
            return np.ascontiguousarray(all_rows[order]), all_pids[order]

    def level_layout(self) -> List[dict]:
        """Per-level segment layout (used by ``repro lsm-info``)."""
        with self._lock:
            if self._segments:
                max_level = max(s.level for s in self._segments)
            else:
                max_level = -1
            tombstones = set(self._tombstones)
            layout = []
            for level in range(max_level + 1):
                members = [s for s in self._segments if s.level == level]
                layout.append(
                    {
                        "level": level,
                        "segments": len(members),
                        "rows": sum(s.cardinality for s in members),
                        "dead_rows": sum(
                            s.dead_count(tombstones) for s in members
                        ),
                        "segment_ids": sorted(s.segment_id for s in members),
                    }
                )
            return layout

    def info(self) -> dict:
        """A JSON-friendly status summary of the whole store."""
        with self._lock:
            return {
                "path": self.directory,
                "dimensionality": self._dimensionality,
                "cardinality": self.cardinality,
                "memtable_rows": len(self._memtable),
                "tombstones": len(self._tombstones),
                "segments": len(self._segments),
                "levels": self.level_layout(),
                "generation": self._generation,
                "persisted_generation": self._persisted_generation,
                "wal_bytes": self._wal.size_bytes,
                "flushes": self.flushes,
                "compactions": self.compactions,
                "write_amplification": self.write_amplification,
                "last_compaction": self.last_compaction,
            }

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _next_generation(self) -> int:
        generation = self._generation + 1
        if generation > self._generation_reserved:
            # Make the reservation durable *before* the generation can
            # appear in a WAL record or a response header.
            self._generation_reserved = generation + self.generation_reserve
            self._write_manifest()
        return generation

    def insert(self, point) -> int:
        """Insert one point; returns its (stable) id.  WAL-logged first."""
        coords = validation.as_query_array(point, self._dimensionality)
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        with self._lock:
            if spans is None:
                wal_bytes = self._apply_insert(coords)
            else:
                with spans.span("lsm/insert"):
                    wal_bytes = self._apply_insert(coords)
            pid = self._next_pid - 1
            self._maybe_flush()
        if registry is not None:
            from ..obs import observe_lsm_mutation, update_lsm_gauges

            observe_lsm_mutation(
                registry, "insert", wal_bytes, time.perf_counter() - started
            )
            update_lsm_gauges(registry, self)
        return pid

    def _apply_insert(self, coords: np.ndarray) -> int:
        pid = self._next_pid
        generation = self._next_generation()
        spans = self._spans
        if spans is None:
            wal_bytes = self._wal.append(OP_INSERT, generation, pid, coords)
        else:
            with spans.span("wal_append", pid=pid):
                wal_bytes = self._wal.append(
                    OP_INSERT, generation, pid, coords
                )
        if self._wal.unsynced >= self.wal_sync_interval:
            self._wal.sync()
        if self._fault is not None:
            self._fault.reached("mutate:after-wal")
        self._next_pid = pid + 1
        self._memtable.add(coords, pid)
        self._generation = generation
        self.user_bytes_inserted += coords.shape[0] * 8
        return wal_bytes

    def insert_many(self, points) -> List[int]:
        """Insert several points; returns their ids."""
        array = validation.as_database_array(points)
        if array.shape[1] != self._dimensionality:
            raise ValidationError(
                f"points have {array.shape[1]} dimensions; expected "
                f"{self._dimensionality}"
            )
        with self._lock:
            return [self.insert(row) for row in array]

    def delete(self, pid: int) -> None:
        """Delete a live point by id.  WAL-logged first."""
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        with self._lock:
            if pid not in self:
                raise ValidationError(
                    f"point {pid} does not exist or was deleted"
                )
            if spans is None:
                wal_bytes = self._apply_delete(pid)
            else:
                with spans.span("lsm/delete"):
                    wal_bytes = self._apply_delete(pid)
            self._maybe_flush()
        if registry is not None:
            from ..obs import observe_lsm_mutation, update_lsm_gauges

            observe_lsm_mutation(
                registry, "delete", wal_bytes, time.perf_counter() - started
            )
            update_lsm_gauges(registry, self)

    def _apply_delete(self, pid: int) -> int:
        generation = self._next_generation()
        spans = self._spans
        if spans is None:
            wal_bytes = self._wal.append(OP_DELETE, generation, pid)
        else:
            with spans.span("wal_append", pid=pid):
                wal_bytes = self._wal.append(OP_DELETE, generation, pid)
        if self._wal.unsynced >= self.wal_sync_interval:
            self._wal.sync()
        if self._fault is not None:
            self._fault.reached("mutate:after-wal")
        self._tombstones.add(pid)
        self._generation = generation
        return wal_bytes

    # ------------------------------------------------------------------
    # flush
    # ------------------------------------------------------------------
    def _maybe_flush(self) -> None:
        if len(self._memtable) >= self.memtable_flush_rows:
            self.flush()

    def flush(self) -> bool:
        """Freeze the memtable into an L0 segment and reset the WAL.

        Returns whether anything was flushed.  Crash-safe at every
        point: the segment is fsync'd before the manifest references
        it, the manifest's ``persisted_generation`` watermark makes a
        not-yet-reset WAL replay idempotent, and an orphaned segment
        file from a death before the manifest write is cleaned up on
        recovery.
        """
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter()
        with self._lock:
            if len(self._memtable) == 0 and self._wal.appended == 0:
                return False
            if spans is None:
                flushed_rows, bytes_written = self._flush_locked()
            else:
                with spans.span("flush", rows=len(self._memtable)):
                    flushed_rows, bytes_written = self._flush_locked()
        if registry is not None:
            from ..obs import observe_lsm_flush, update_lsm_gauges

            observe_lsm_flush(
                registry,
                flushed_rows,
                bytes_written,
                time.perf_counter() - started,
            )
            update_lsm_gauges(registry, self)
        if self._compactor is not None:
            self._compactor.wake()
        return True

    def _flush_locked(self) -> Tuple[int, int]:
        rows, pids = self._memtable.live_arrays(self._tombstones)
        if self._fault is not None:
            self._fault.reached("flush:before-segment")
        bytes_written = 0
        if rows.shape[0]:
            segment = Segment(self._next_segment_id, 0, rows, pids)
            self._next_segment_id += 1
            filename = segment.save(os.path.join(self.directory, SEGMENT_DIR))
            bytes_written = os.path.getsize(
                os.path.join(self.directory, SEGMENT_DIR, filename)
            )
            self.segment_bytes_written += bytes_written
            self._segments.append(segment)
        # Durability order: WAL synced, then the manifest that both
        # references the new segment and advances the replay watermark.
        self._wal.sync()
        if self._fault is not None:
            self._fault.reached("flush:before-manifest")
        self._memtable.clear()
        self._tombstones = {
            t
            for t in self._tombstones
            if any(s.contains_pid(t) for s in self._segments)
        }
        self._persisted_generation = self._generation
        self.flushes += 1
        self._write_manifest()
        if self._fault is not None:
            self._fault.reached("flush:before-wal-reset")
        self._reset_wal()
        return int(rows.shape[0]), bytes_written

    def _reset_wal(self) -> None:
        self._wal.close()
        tmp = self._wal_path + ".tmp"
        fresh = WalWriter(tmp)
        fresh.close()
        os.replace(tmp, self._wal_path)
        self._wal = WalWriter(self._wal_path, fault=self._fault)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _overflowing_level(self) -> Optional[int]:
        counts: Dict[int, int] = {}
        for segment in self._segments:
            counts[segment.level] = counts.get(segment.level, 0) + 1
        for level in sorted(counts):
            if counts[level] > self.level_fanout:
                return level
        return None

    def compact_once(self) -> bool:
        """Merge one overflowing level into the next; returns whether it did.

        The store lock is held only to snapshot the victims and to swap
        in the merged segment — the merge itself (concatenate, filter
        tombstones, rebuild sorted columns, fsync the file) runs
        unlocked, so readers and writers proceed concurrently.
        Tombstones added *during* the merge are preserved: the merge
        drops only the snapshot's tombstones, and the swap re-derives
        which tombstones still reference a stored row.
        """
        registry = self._metrics
        spans = self._spans
        with self._compact_lock:
            started = time.perf_counter()
            with self._lock:
                level = self._overflowing_level()
                if level is None:
                    return False
                victims = [s for s in self._segments if s.level == level]
                tombstone_snapshot = set(self._tombstones)
                segment_id = self._next_segment_id
                self._next_segment_id += 1
            if spans is None:
                rows_in, rows_out, bytes_written = self._merge_level(
                    level, victims, tombstone_snapshot, segment_id
                )
            else:
                with spans.span(
                    "compact", level=level, segments=len(victims)
                ):
                    rows_in, rows_out, bytes_written = self._merge_level(
                        level, victims, tombstone_snapshot, segment_id
                    )
            seconds = time.perf_counter() - started
            with self._lock:
                self.last_compaction = {
                    "level": level,
                    "segments_merged": len(victims),
                    "rows_in": rows_in,
                    "rows_out": rows_out,
                    "seconds": seconds,
                    "at_generation": self._generation,
                }
                # The swap's manifest predates this record; rewrite so
                # `repro lsm-info` sees the stats after a reopen.
                self._write_manifest()
        if registry is not None:
            from ..obs import observe_lsm_compaction, update_lsm_gauges

            observe_lsm_compaction(
                registry,
                level,
                len(victims),
                rows_in,
                rows_out,
                seconds,
                bytes_written,
            )
            update_lsm_gauges(registry, self)
        return True

    def _merge_level(
        self,
        level: int,
        victims: List[Segment],
        tombstone_snapshot: set,
        segment_id: int,
    ) -> Tuple[int, int, int]:
        # Unlocked merge: victims are immutable and stay published, so
        # concurrent queries keep answering over the old level.
        rows = np.vstack([s.rows for s in victims])
        pids = np.concatenate([s.pids for s in victims])
        rows_in = int(pids.shape[0])
        if tombstone_snapshot:
            live = ~np.isin(
                pids, np.fromiter(tombstone_snapshot, dtype=np.int64)
            )
            rows, pids = rows[live], pids[live]
        order = np.argsort(pids)
        rows = np.ascontiguousarray(rows[order])
        pids = pids[order]

        merged: Optional[Segment] = None
        bytes_written = 0
        if pids.shape[0]:
            merged = Segment(segment_id, level + 1, rows, pids)
            merged.save(os.path.join(self.directory, SEGMENT_DIR))
            bytes_written = os.path.getsize(
                os.path.join(self.directory, SEGMENT_DIR, merged.filename)
            )
        if self._fault is not None:
            self._fault.reached("compact:after-segment")

        victim_ids = {s.segment_id for s in victims}
        with self._lock:
            # The swap: one list replacement under the lock, then the
            # manifest.  Readers blocked only for this instant.
            self._segments = [
                s for s in self._segments if s.segment_id not in victim_ids
            ]
            if merged is not None:
                self._segments.append(merged)
            self.segment_bytes_written += bytes_written
            self._tombstones = {
                t
                for t in self._tombstones
                if t in self._memtable
                or any(s.contains_pid(t) for s in self._segments)
            }
            self.compactions += 1
            if self._fault is not None:
                self._fault.reached("compact:before-manifest")
            self._write_manifest()
        # Old files are unreferenced now; delete outside the lock.
        for victim in victims:
            path = os.path.join(self.directory, SEGMENT_DIR, victim.filename)
            if os.path.exists(path):
                os.remove(path)
        return rows_in, int(pids.shape[0]), bytes_written

    def compact(self) -> int:
        """Compact synchronously until no level overflows; returns rounds."""
        rounds = 0
        while self.compact_once():
            rounds += 1
        return rounds

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """Exact k-n-match over the live points."""
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        with self._lock:
            if self.cardinality == 0:
                raise EmptyDatabaseError("no live points to search")
            k = validation.validate_k(k, self.cardinality)
            n = validation.validate_n(n, self._dimensionality)
            query = validation.as_query_array(query, self._dimensionality)
            if spans is None:
                candidates, stats = self._candidates(query, k, (n, n))
                merged = sorted(candidates[n])[:k]
            else:
                with spans.span("lsm/k_n_match", k=k, n=n):
                    candidates, stats = self._candidates(query, k, (n, n))
                    with spans.span("merge"):
                        merged = sorted(candidates[n])[:k]
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, "lsm", "k_n_match", stats,
                time.perf_counter() - started, self._dimensionality,
            )
        return MatchResult(
            ids=[pid for _diff, pid in merged],
            differences=[diff for diff, _pid in merged],
            k=k,
            n=n,
            stats=stats,
        )

    def frequent_k_n_match(
        self, query, k: int, n_range: Tuple[int, int], keep_answer_sets: bool = True
    ) -> FrequentMatchResult:
        """Exact frequent k-n-match over the live points."""
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        with self._lock:
            if self.cardinality == 0:
                raise EmptyDatabaseError("no live points to search")
            k = validation.validate_k(k, self.cardinality)
            n0, n1 = validation.validate_n_range(n_range, self._dimensionality)
            query = validation.as_query_array(query, self._dimensionality)
            if spans is None:
                candidates, stats = self._candidates(query, k, (n0, n1))
                answer_sets = self._answer_sets(candidates, k, n0, n1)
            else:
                with spans.span("lsm/frequent_k_n_match", k=k, n0=n0, n1=n1):
                    candidates, stats = self._candidates(query, k, (n0, n1))
                    with spans.span("merge"):
                        answer_sets = self._answer_sets(candidates, k, n0, n1)
        chosen, frequencies = rank_by_frequency(answer_sets, k)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, "lsm", "frequent_k_n_match", stats,
                time.perf_counter() - started, self._dimensionality,
            )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    @staticmethod
    def _answer_sets(candidates, k: int, n0: int, n1: int) -> Dict[int, List[int]]:
        answer_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            merged = sorted(candidates[n])[:k]
            answer_sets[n] = [pid for _diff, pid in merged]
        return answer_sets

    def _candidates(
        self, query: np.ndarray, k: int, n_range: Tuple[int, int]
    ) -> Tuple[Dict[int, List[Tuple[float, int]]], SearchStats]:
        """Per-n candidate streams from the memtable and every segment."""
        n0, n1 = n_range
        per_n: Dict[int, List[Tuple[float, int]]] = {
            n: [] for n in range(n0, n1 + 1)
        }
        stats = SearchStats(
            total_attributes=self.cardinality * self._dimensionality
        )
        spans = self._spans
        if spans is None:
            self._memtable.collect_candidates(
                query, n0, n1, self._tombstones, per_n, stats
            )
            for segment in self._segments:
                stats = segment.collect_candidates(
                    query, k, n0, n1, self._tombstones, per_n, stats
                )
        else:
            with spans.span("memtable_scan", rows=len(self._memtable)):
                self._memtable.collect_candidates(
                    query, n0, n1, self._tombstones, per_n, stats
                )
            for segment in self._segments:
                with spans.span(
                    "segment_search",
                    segment=segment.segment_id,
                    level=segment.level,
                ):
                    stats = segment.collect_candidates(
                        query, k, n0, n1, self._tombstones, per_n, stats
                    )
        return per_n, stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the compactor, sync the WAL, release file handles."""
        if self._compactor is not None:
            self._compactor.stop()
            self._compactor = None
        with self._lock:
            if self._wal.unsynced:
                self._wal.sync()
            self._wal.close()

    def __enter__(self) -> "LsmMatchDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
