"""Tables 2 and 3: k-n-match vs kNN on the COIL-100 stand-in.

Table 2 of the paper: k-n-match results on the COIL-100 image features,
query image 42, k = 4, n sampled from 5 to 50.  Table 3: the 10 nearest
neighbours of the same query under Euclidean distance.  The paper's
observations, which the stand-in reproduces:

* the partial-match image (78, "a boat which is obviously more similar")
  appears in the k-n-match answers for most n but is absent from the kNN
  answers "even when finding 20 nearest neighbors";
* the scaled variant (image 3) appears for a few n values only,
  motivating the frequent k-n-match query;
* kNN's answers are dominated by images at moderate distance in every
  dimension with no aspect matching well.
"""

from __future__ import annotations

from typing import List, Tuple

from ..baselines.knn import KnnEngine
from ..core.engine import MatchDatabase
from ..data import (
    PARTIAL_MATCH_IMAGE,
    QUERY_IMAGE,
    SCALED_VARIANT_IMAGE,
    make_coil_like,
)
from .common import ExperimentResult

__all__ = ["run", "TABLE2_N_VALUES"]

#: The n values Table 2 samples.
TABLE2_N_VALUES = tuple(range(5, 51, 5))


def run(seed: int = 100, k: int = 4, knn_k: int = 10) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Table 2 and Table 3."""
    coil = make_coil_like(seed=seed)
    query = coil.query()
    db = MatchDatabase(coil.data)

    rows2: List[List] = []
    partial_appearances = 0
    variant_appearances = 0
    for n in TABLE2_N_VALUES:
        result = db.k_n_match(query, k=k, n=n)
        ids = sorted(result.ids)
        partial_appearances += PARTIAL_MATCH_IMAGE in ids
        variant_appearances += SCALED_VARIANT_IMAGE in ids
        rows2.append([n, ", ".join(str(i) for i in ids)])

    knn = KnnEngine(coil.data)
    knn_result = knn.top_k(query, knn_k)
    knn20 = knn.top_k(query, 20)

    table2 = ExperimentResult(
        experiment="Table 2",
        description=f"k-n-match results, k = {k}, query image {QUERY_IMAGE}",
        headers=["n", "images returned"],
        rows=rows2,
        notes=[
            f"partial-match image {PARTIAL_MATCH_IMAGE} appears in "
            f"{partial_appearances}/{len(TABLE2_N_VALUES)} answer sets",
            f"scaled-variant image {SCALED_VARIANT_IMAGE} appears in "
            f"{variant_appearances}/{len(TABLE2_N_VALUES)} answer sets",
        ],
    )
    table3 = ExperimentResult(
        experiment="Table 3",
        description=f"kNN results, k = {knn_k}, query image {QUERY_IMAGE}",
        headers=["k", "images returned"],
        rows=[[knn_k, ", ".join(str(i) for i in sorted(knn_result.ids))]],
        notes=[
            f"image {PARTIAL_MATCH_IMAGE} in kNN top-20: "
            f"{PARTIAL_MATCH_IMAGE in knn20.ids} (paper: absent)",
        ],
    )
    return table2, table3
