"""Figure 13: frequent k-n-match (scan, AD) vs IGrid — k and size sweeps.

Response time on 16-d uniform data of the three similarity-search
techniques the paper races: the sequential-scan frequent k-n-match, the
AD algorithm (FKNMatchAD) and IGrid.  (a) sweeps k at 100,000 points;
(b) sweeps the dataset size from 50,000 to 300,000 at k = 20.  Expected
ordering at every setting: AD < scan < IGrid, with all three scaling
roughly linearly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..disk import DiskADEngine, DiskScanEngine
from ..igrid import IGridEngine
from .common import (
    ExperimentResult,
    N0_DEFAULT,
    N1_DEFAULT,
    scaled_cardinality,
    uniform_workload,
)

__all__ = ["run", "FIG13_K_VALUES", "FIG13_SIZES"]

FIG13_K_VALUES = (10, 20, 30, 40)
FIG13_SIZES = (50000, 100000, 200000, 300000)


def _build_engines(data: np.ndarray):
    return DiskScanEngine(data), DiskADEngine(data), IGridEngine(data)


def _times_for(
    engines,
    query_set: np.ndarray,
    k: int,
    n_range: Tuple[int, int],
) -> Tuple[float, float, float]:
    """(scan, AD, IGrid) mean simulated response times on one workload."""
    scan, ad, igrid = engines
    scan_time = float(
        np.mean(
            [
                scan.simulated_seconds(
                    scan.frequent_k_n_match(
                        q, k, n_range, keep_answer_sets=False
                    ).stats
                )
                for q in query_set
            ]
        )
    )
    ad_time = float(
        np.mean(
            [
                ad.simulated_seconds(
                    ad.frequent_k_n_match(q, k, n_range, keep_answer_sets=False).stats
                )
                for q in query_set
            ]
        )
    )
    igrid_time = float(
        np.mean(
            [igrid.simulated_seconds(igrid.top_k(q, k).stats) for q in query_set]
        )
    )
    return scan_time, ad_time, igrid_time


def run(
    scale: float = 1.0,
    queries: int = 3,
    n_range: Tuple[int, int] = (N0_DEFAULT, N1_DEFAULT),
    k_values: Sequence[int] = FIG13_K_VALUES,
    sizes: Sequence[int] = FIG13_SIZES,
    fixed_k: int = 20,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 13(a) and Fig. 13(b)."""
    # (a) response time vs k at the base cardinality
    data, query_set = uniform_workload(scaled_cardinality(100000, scale), 16, queries)
    engines = _build_engines(data)
    rows_a: List[List] = []
    for k in k_values:
        scan_t, ad_t, igrid_t = _times_for(engines, query_set, k, n_range)
        rows_a.append([k, scan_t, ad_t, igrid_t])
    fig_a = ExperimentResult(
        experiment="Figure 13(a)",
        description=f"response time (s) vs k, 16-d uniform, n range {n_range}",
        headers=["k", "scan", "AD", "IGrid"],
        rows=rows_a,
        notes=["expected ordering: AD < scan < IGrid"],
    )

    # (b) response time vs dataset size at fixed k
    rows_b: List[List] = []
    for size in sizes:
        data, query_set = uniform_workload(
            scaled_cardinality(size, scale), 16, queries, seed=size
        )
        scan_t, ad_t, igrid_t = _times_for(
            _build_engines(data), query_set, fixed_k, n_range
        )
        rows_b.append([data.shape[0], scan_t, ad_t, igrid_t])
    fig_b = ExperimentResult(
        experiment="Figure 13(b)",
        description=f"response time (s) vs dataset size, k = {fixed_k}",
        headers=["size", "scan", "AD", "IGrid"],
        rows=rows_b,
        notes=["expected: all three roughly linear in size; AD fastest"],
    )
    return fig_a, fig_b
