"""Shared infrastructure for the experiment modules.

Each ``repro.experiments.<id>`` module regenerates one table or figure of
the paper's Sec. 5 and returns :class:`ExperimentResult` objects — plain
rows plus a formatted table whose columns read like the original.  The
benchmarks wrap these runners; the ``runall`` module prints everything.

Scale: the paper's synthetic experiments use 100,000-point databases and
the 68,040-point Texture set.  Every runner takes a ``scale`` factor that
multiplies cardinalities (floored at 1,000) so test suites can exercise
the full code path in seconds while the benchmark harness runs the real
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..core.types import SearchStats
from ..data import make_texture_like, sample_queries, uniform_dataset
from ..eval.harness import Cell, format_table
from ..storage import DEFAULT_DISK_MODEL, DiskModel

__all__ = [
    "ExperimentResult",
    "N0_DEFAULT",
    "N1_DEFAULT",
    "scaled_cardinality",
    "uniform_workload",
    "texture_workload",
    "mean_stats",
    "mean_simulated_seconds",
]

#: Default frequent k-n-match range for the efficiency study, chosen in
#: Sec. 5.2.1: n0 = 4; n1 ~ 8 "varying 1 or 2 depending on dimensionality".
N0_DEFAULT = 4
N1_DEFAULT = 8


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment: str  # e.g. "Table 4", "Figure 12(a)"
    description: str
    headers: Sequence[str]
    rows: List[List[Cell]]
    notes: List[str] = field(default_factory=list)

    def formatted(self) -> str:
        text = format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.description}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return text

    def column(self, header: str) -> List[Cell]:
        """One column of the table by header name."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def chart(
        self,
        x: str,
        y: Union[str, Sequence[str]],
        series: str = "",
        **chart_kwargs,
    ) -> str:
        """Render this experiment as an ASCII chart.

        Two layouts are supported: *wide* — ``y`` names several value
        columns, each becoming a curve over the ``x`` column (Fig. 13's
        scan/AD/IGrid columns) — and *long* — ``series`` names a label
        column whose distinct values become the curves (Fig. 8's
        per-dataset rows).
        """
        from ..eval.ascii_plot import ascii_chart

        x_values = self.column(x)
        curves: Dict[str, Dict[float, float]] = {}
        if series:
            labels = self.column(series)
            y_values = self.column(y if isinstance(y, str) else y[0])
            for label, x_value, y_value in zip(labels, x_values, y_values):
                if x_value is None or y_value is None:
                    continue
                curves.setdefault(str(label), {})[float(x_value)] = float(y_value)
        else:
            names = [y] if isinstance(y, str) else list(y)
            for name in names:
                curve = {}
                for x_value, y_value in zip(x_values, self.column(name)):
                    if x_value is None or y_value is None:
                        continue
                    curve[float(x_value)] = float(y_value)
                curves[name] = curve
        return ascii_chart(
            curves,
            title=f"{self.experiment}: {self.description}",
            x_label=x,
            **chart_kwargs,
        )


def scaled_cardinality(base: int, scale: float, floor: int = 1000) -> int:
    """Scale a paper cardinality, flooring so code paths stay exercised."""
    return max(floor, int(round(base * scale)))


def uniform_workload(
    cardinality: int,
    dimensionality: int = 16,
    queries: int = 3,
    seed: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """A uniform dataset plus queries sampled from it (paper protocol)."""
    data = uniform_dataset(cardinality, dimensionality, seed=seed)
    return data, sample_queries(data, queries, seed=seed + 1)


def texture_workload(
    scale: float = 1.0, queries: int = 3, seed: int = 68040
) -> Tuple[np.ndarray, np.ndarray]:
    """The Texture stand-in plus sampled queries."""
    cardinality = scaled_cardinality(68040, scale)
    data = make_texture_like(cardinality=cardinality, seed=seed)
    return data, sample_queries(data, queries, seed=seed + 1)


def mean_stats(stats_list: Sequence[SearchStats]) -> SearchStats:
    """Component-wise mean of several queries' counters (rounded)."""
    if not stats_list:
        return SearchStats()
    count = len(stats_list)
    merged = SearchStats()
    for stats in stats_list:
        merged = merged.merge(stats)
    return SearchStats(
        attributes_retrieved=merged.attributes_retrieved // count,
        total_attributes=merged.total_attributes,
        heap_pops=merged.heap_pops // count,
        binary_search_probes=merged.binary_search_probes // count,
        sequential_page_reads=merged.sequential_page_reads // count,
        random_page_reads=merged.random_page_reads // count,
        candidates_refined=merged.candidates_refined // count,
        approximation_entries_scanned=merged.approximation_entries_scanned // count,
        inverted_list_entries=merged.inverted_list_entries // count,
        points_scanned=merged.points_scanned // count,
    )


def mean_simulated_seconds(
    stats_list: Sequence[SearchStats], model: DiskModel = DEFAULT_DISK_MODEL
) -> float:
    """Mean simulated response time of several queries."""
    if not stats_list:
        return 0.0
    return float(
        np.mean([model.simulated_seconds(stats) for stats in stats_list])
    )
