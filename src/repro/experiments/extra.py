"""Beyond-the-paper experiment: what *kind* of query is each technique?

Sec. 6 criticises evaluating partial-similarity techniques by "recall of
the actual kNN": techniques like DPF approximate kNN, while the
(frequent) k-n-match query answers something genuinely different.  This
experiment quantifies that distinction on one table: for each technique,
its class-stripping accuracy (does it find *similar* objects?) next to
its recall of the exact kNN (is it just kNN in disguise?).

Expected shape: kNN scores 100% recall by construction; DPF at large n
sits close to it; frequent k-n-match and IGrid clearly lower recall —
yet frequent k-n-match has the *highest* accuracy.  Different query,
better answers.
"""

from __future__ import annotations

from typing import List

from ..data import make_uci_standin
from ..eval import (
    class_stripping_accuracy,
    dpf_searcher,
    frequent_knmatch_searcher,
    igrid_searcher,
    knn_recall,
    knn_searcher,
)
from .common import ExperimentResult

__all__ = ["run"]


def run(
    dataset_name: str = "segmentation",
    queries: int = 50,
    k: int = 20,
    seed: int = 2006,
    query_seed: int = 1,
) -> ExperimentResult:
    """Accuracy vs kNN-recall for every similarity technique."""
    dataset = make_uci_standin(dataset_name, seed=seed)
    d = dataset.dimensionality
    effective_queries = min(queries, dataset.cardinality)
    techniques = [
        ("kNN (Euclidean)", knn_searcher(dataset.data)),
        ("DPF (n = d-2)", dpf_searcher(dataset.data, max(1, d - 2))),
        ("IGrid", igrid_searcher(dataset.data)),
        ("freq. k-n-match [1,d]", frequent_knmatch_searcher(dataset.data)),
    ]
    rows: List[List] = []
    for name, searcher in techniques:
        accuracy = class_stripping_accuracy(
            dataset, searcher, name, queries=effective_queries, k=k, seed=query_seed
        ).accuracy
        recall = knn_recall(
            dataset.data, searcher, name, queries=effective_queries, k=k, seed=query_seed
        ).mean_recall
        rows.append([name, accuracy, recall])
    return ExperimentResult(
        experiment="Extra A",
        description=(
            f"accuracy vs recall-of-exact-kNN on {dataset_name}, "
            f"{effective_queries} queries, k = {k}"
        ),
        headers=["technique", "class accuracy", "kNN recall"],
        rows=rows,
        notes=[
            "Sec. 6's point, quantified: frequent k-n-match is not an "
            "approximate kNN (low recall) yet finds more similar objects "
            "(top accuracy)",
        ],
    )
