"""Figure 11: disk AD vs sequential scan on the Texture stand-in.

Page accesses (a) and response time (b) of the disk-based AD algorithm
against the sequential scan, for frequent k-n-match with k in
{10, 20, 30}.  The paper: "The number of page accesses of AD is 10-20%
of the sequential scan and the result of response time is similar ...
it beats sequential scan on the total response time."
"""

from __future__ import annotations

from typing import List, Tuple

from ..disk import DiskADEngine, DiskScanEngine
from .common import (
    ExperimentResult,
    N0_DEFAULT,
    N1_DEFAULT,
    texture_workload,
)

__all__ = ["run", "FIG11_K_VALUES"]

FIG11_K_VALUES = (10, 20, 30)


def run(
    scale: float = 1.0,
    queries: int = 3,
    n_range: Tuple[int, int] = (N0_DEFAULT, N1_DEFAULT),
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 11(a) and Fig. 11(b)."""
    data, query_set = texture_workload(scale, queries)
    ad = DiskADEngine(data)
    scan = DiskScanEngine(data)

    rows_a: List[List] = []
    rows_b: List[List] = []
    for k in FIG11_K_VALUES:
        ad_stats = [
            ad.frequent_k_n_match(q, k, n_range, keep_answer_sets=False).stats
            for q in query_set
        ]
        scan_stats = [
            scan.frequent_k_n_match(q, k, n_range, keep_answer_sets=False).stats
            for q in query_set
        ]
        ad_pages = sum(s.page_reads for s in ad_stats) / len(ad_stats)
        scan_pages = sum(s.page_reads for s in scan_stats) / len(scan_stats)
        rows_a.append([k, int(ad_pages), int(scan_pages), ad_pages / scan_pages])
        ad_time = sum(ad.simulated_seconds(s) for s in ad_stats) / len(ad_stats)
        scan_time = sum(scan.simulated_seconds(s) for s in scan_stats) / len(
            scan_stats
        )
        rows_b.append([k, ad_time, scan_time, scan_time / ad_time])

    fig_a = ExperimentResult(
        experiment="Figure 11(a)",
        description=f"page accesses, texture, n range {n_range}",
        headers=["k", "AD pages", "scan pages", "AD/scan"],
        rows=rows_a,
        notes=["paper: AD does 10-20% of the scan's page accesses"],
    )
    fig_b = ExperimentResult(
        experiment="Figure 11(b)",
        description="response time (s), texture",
        headers=["k", "AD", "scan", "speedup"],
        rows=rows_b,
        notes=["paper: AD beats the scan's total response time"],
    )
    return fig_a, fig_b
