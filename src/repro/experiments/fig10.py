"""Figure 10: the VA-file adaptation does not pay off.

Fig. 10(a): number of points retrieved in the VA-file's refinement phase
for frequent k-n-match, k in {10, 20, 30}, on a 16-d uniform dataset and
the Texture stand-in — a substantial fraction of the database survives
the bound-based pruning.  Fig. 10(b): the resulting response time versus
a plain sequential scan — the survivors need (mostly) random page
accesses, so the VA-file ends up slower than scanning, the paper's
"about twice that of the scan algorithm".
"""

from __future__ import annotations

from typing import List, Tuple

from ..disk import DiskScanEngine
from ..vafile import VAFileEngine
from .common import (
    ExperimentResult,
    N0_DEFAULT,
    N1_DEFAULT,
    scaled_cardinality,
    texture_workload,
    uniform_workload,
)

__all__ = ["run", "FIG10_K_VALUES"]

FIG10_K_VALUES = (10, 20, 30)


def run(
    scale: float = 1.0,
    queries: int = 3,
    n_range: Tuple[int, int] = (N0_DEFAULT, N1_DEFAULT),
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 10(a) and Fig. 10(b)."""
    workloads = {
        "uniform": uniform_workload(scaled_cardinality(100000, scale), 16, queries),
        "texture": texture_workload(scale, queries),
    }

    rows_a: List[List] = []
    rows_b: List[List] = []
    for name, (data, query_set) in workloads.items():
        va = VAFileEngine(data)
        scan = DiskScanEngine(data)
        for k in FIG10_K_VALUES:
            va_stats = [
                va.frequent_k_n_match(q, k, n_range, keep_answer_sets=False).stats
                for q in query_set
            ]
            scan_stats = [
                scan.frequent_k_n_match(q, k, n_range, keep_answer_sets=False).stats
                for q in query_set
            ]
            refined = sum(s.candidates_refined for s in va_stats) / len(va_stats)
            rows_a.append([name, k, int(refined), data.shape[0]])
            va_time = sum(va.simulated_seconds(s) for s in va_stats) / len(va_stats)
            scan_time = sum(
                scan.simulated_seconds(s) for s in scan_stats
            ) / len(scan_stats)
            rows_b.append([name, k, va_time, scan_time, va_time / scan_time])

    fig_a = ExperimentResult(
        experiment="Figure 10(a)",
        description=f"points retrieved by VA-file phase 2, n range {n_range}",
        headers=["data set", "k", "points retrieved", "cardinality"],
        rows=rows_a,
    )
    fig_b = ExperimentResult(
        experiment="Figure 10(b)",
        description="response time (s): VA-file vs sequential scan",
        headers=["data set", "k", "VA-file", "scan", "VA/scan"],
        rows=rows_b,
        notes=["paper: VA-file response time about twice the scan's"],
    )
    return fig_a, fig_b
