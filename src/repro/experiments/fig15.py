"""Figure 15: scan vs AD vs IGrid on the (skewed) Texture stand-in.

(a) response time sweeping n1 with n0 = 4: "FKNMatchAD beats the other
two techniques even when n1 equals the dimensionality 16."  (b) the
explanation — percentage of attributes retrieved vs n1: "when n1 = 16,
there is only 25% of the attributes retrieved due to the high skew of
the real data."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..disk import DiskADEngine, DiskScanEngine
from ..igrid import IGridEngine
from .common import ExperimentResult, N0_DEFAULT, texture_workload

__all__ = ["run", "FIG15_N1_VALUES"]

FIG15_N1_VALUES = (6, 8, 10, 12, 14, 16)


def run(
    scale: float = 1.0,
    queries: int = 3,
    k: int = 20,
    n0: int = N0_DEFAULT,
    n1_values: Sequence[int] = FIG15_N1_VALUES,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 15(a) and Fig. 15(b)."""
    data, query_set = texture_workload(scale, queries)
    scan = DiskScanEngine(data)
    ad = DiskADEngine(data)
    igrid = IGridEngine(data)

    igrid_time = float(
        np.mean([igrid.simulated_seconds(igrid.top_k(q, k).stats) for q in query_set])
    )
    scan_reference = None  # scan cost is n1-independent I/O, compute once per n1 anyway

    rows_a: List[List] = []
    rows_b: List[List] = []
    for n1 in n1_values:
        ad_stats = [
            ad.frequent_k_n_match(q, k, (n0, n1), keep_answer_sets=False).stats
            for q in query_set
        ]
        scan_stats = [
            scan.frequent_k_n_match(q, k, (n0, n1), keep_answer_sets=False).stats
            for q in query_set
        ]
        ad_time = float(np.mean([ad.simulated_seconds(s) for s in ad_stats]))
        scan_time = float(np.mean([scan.simulated_seconds(s) for s in scan_stats]))
        scan_reference = scan_time
        rows_a.append([n1, scan_time, ad_time, igrid_time])
        retrieved = 100.0 * float(
            np.mean([s.fraction_retrieved for s in ad_stats])
        )
        rows_b.append([n1, retrieved])

    fig_a = ExperimentResult(
        experiment="Figure 15(a)",
        description=f"response time (s) vs n1, texture, k = {k}, n0 = {n0}",
        headers=["n1", "scan", "AD", "IGrid"],
        rows=rows_a,
        notes=[
            "paper: AD beats both competitors even at n1 = 16",
            f"scan reference at last n1: {scan_reference:.3f}s",
        ],
    )
    fig_b = ExperimentResult(
        experiment="Figure 15(b)",
        description="retrieved attributes (%) vs n1, texture",
        headers=["n1", "retrieved attributes (%)"],
        rows=rows_b,
        notes=["paper: only ~25% retrieved at n1 = 16 thanks to the skew"],
    )
    return fig_a, fig_b
