"""Run every experiment and print the regenerated tables and figures.

Usage::

    python -m repro.experiments.runall [--scale 0.1] [--queries 3]

``--scale`` multiplies the synthetic cardinalities (1.0 = the paper's
100,000-point / 68,040-point sizes); ``--queries`` is the number of
queries averaged in the efficiency experiments.  Effectiveness
experiments (Tables 2-4, Figs. 8-9) always run the paper's real dataset
sizes — they are small.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable

from . import (
    extra,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table2_3,
    table4,
)
from .common import ExperimentResult

#: experiment id -> (x column, y column(s), series column) for --charts
CHART_SPECS = {
    "Figure 8(a)": ("n0", "accuracy", "data set"),
    "Figure 8(b)": ("n1", "accuracy", "data set"),
    "Figure 9(a)": ("n1", "retrieved attributes (%)", "data set"),
    "Figure 11(b)": ("k", ["AD", "scan"], ""),
    "Figure 13(a)": ("k", ["scan", "AD", "IGrid"], ""),
    "Figure 13(b)": ("size", ["scan", "AD", "IGrid"], ""),
    "Figure 14": ("dimensionality", ["scan", "AD", "IGrid"], ""),
    "Figure 15(a)": ("n1", ["scan", "AD", "IGrid"], ""),
    "Figure 15(b)": ("n1", "retrieved attributes (%)", ""),
}


def _emit(results: Iterable[ExperimentResult], stream, charts: bool = False) -> None:
    for result in results:
        print(result.formatted(), file=stream)
        spec = CHART_SPECS.get(result.experiment) if charts else None
        if spec is not None:
            x, y, series = spec
            print(file=stream)
            print(result.chart(x, y, series=series), file=stream)
        print(file=stream)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--queries", type=int, default=3)
    parser.add_argument(
        "--accuracy-queries",
        type=int,
        default=100,
        help="queries per dataset in the class-stripping experiments",
    )
    parser.add_argument(
        "--only",
        type=str,
        default="",
        help="comma-separated experiment ids, e.g. 'table4,fig12'",
    )
    parser.add_argument(
        "--csv-dir",
        type=str,
        default="",
        help="also write one CSV per regenerated table/figure here",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="render figure experiments as ASCII charts too",
    )
    args = parser.parse_args(argv)
    only = {token.strip() for token in args.only.split(",") if token.strip()}

    def wanted(name: str) -> bool:
        return not only or name in only

    stream = sys.stdout
    started = time.time()
    produced = []

    def run(results) -> None:
        results = list(results)
        produced.extend(results)
        _emit(results, stream, charts=args.charts)

    if wanted("table2_3"):
        run(table2_3.run())
    if wanted("table4"):
        run([table4.run(queries=args.accuracy_queries)])
    if wanted("fig8"):
        run(fig8.run(queries=args.accuracy_queries))
    if wanted("fig9"):
        run(fig9.run(queries=min(args.accuracy_queries, 50)))
    if wanted("fig10"):
        run(fig10.run(scale=args.scale, queries=args.queries))
    if wanted("fig11"):
        run(fig11.run(scale=args.scale, queries=args.queries))
    if wanted("fig12"):
        run(fig12.run(scale=args.scale, queries=args.queries))
    if wanted("fig13"):
        run(fig13.run(scale=args.scale, queries=args.queries))
    if wanted("fig14"):
        run([fig14.run(scale=args.scale, queries=args.queries)])
    if wanted("fig15"):
        run(fig15.run(scale=args.scale, queries=args.queries))
    if wanted("extra"):
        run([extra.run(queries=min(args.accuracy_queries, 50))])
    if args.csv_dir:
        from ..eval.export import write_experiment_csv

        paths = write_experiment_csv(produced, args.csv_dir)
        print(f"wrote {len(paths)} CSV files to {args.csv_dir}", file=stream)
    print(f"total wall time: {time.time() - started:.1f}s", file=stream)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
