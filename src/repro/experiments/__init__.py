"""Experiment runners: one module per table/figure of the paper's Sec. 5.

=============  =====================================================
module         regenerates
=============  =====================================================
``table2_3``   Table 2 (k-n-match on COIL) and Table 3 (kNN)
``table4``     Table 4 (class-stripping accuracy comparison)
``fig8``       Fig. 8(a)/(b): accuracy vs n0 / n1
``fig9``       Fig. 9(a)/(b): attribute retrieval vs n1, trade-off
``fig10``      Fig. 10(a)/(b): VA-file refinement and response time
``fig11``      Fig. 11(a)/(b): disk AD vs scan (texture), k sweep
``fig12``      Fig. 12(a)/(b): disk AD vs scan, n1 sweep
``fig13``      Fig. 13(a)/(b): scan/AD/IGrid, k and size sweeps
``fig14``      Fig. 14: scan/AD/IGrid vs dimensionality
``fig15``      Fig. 15(a)/(b): scan/AD/IGrid on texture, n1 sweep
=============  =====================================================
"""

from .common import ExperimentResult, N0_DEFAULT, N1_DEFAULT

__all__ = ["ExperimentResult", "N0_DEFAULT", "N1_DEFAULT"]
