"""Figure 14: effect of dimensionality.

Response time of scan, AD and IGrid on uniform data of 8 to 48
dimensions (100,000 points, k = 20).  The paper: "FKNMatchAD always
outperforms the other two techniques."  The frequent range follows
Sec. 5.2.1's recipe — n0 = 4, n1 about half the dimensionality, capped
at d (at d = 8, [4, 8] spans half the dimensions, like the paper's
"about 8 for the high dimensional real data sets, varying 1 or 2").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..disk import DiskADEngine, DiskScanEngine
from ..igrid import IGridEngine
from .common import ExperimentResult, N0_DEFAULT, scaled_cardinality, uniform_workload

__all__ = ["run", "FIG14_DIMENSIONALITIES", "n_range_for_dimensionality"]

FIG14_DIMENSIONALITIES = (8, 16, 32, 48)


def n_range_for_dimensionality(d: int, n0: int = N0_DEFAULT) -> Tuple[int, int]:
    """The Sec.-5.2.1 range recipe: n0 = 4, n1 = max(n0, d // 2)."""
    n0 = min(n0, d)
    return n0, max(n0, d // 2)


def run(
    scale: float = 1.0,
    queries: int = 3,
    k: int = 20,
    dimensionalities: Sequence[int] = FIG14_DIMENSIONALITIES,
) -> ExperimentResult:
    """Regenerate Fig. 14."""
    rows: List[List] = []
    for d in dimensionalities:
        data, query_set = uniform_workload(
            scaled_cardinality(100000, scale), d, queries, seed=d
        )
        n_range = n_range_for_dimensionality(d)
        scan = DiskScanEngine(data)
        ad = DiskADEngine(data)
        igrid = IGridEngine(data)
        scan_t = float(
            np.mean(
                [
                    scan.simulated_seconds(
                        scan.frequent_k_n_match(
                            q, k, n_range, keep_answer_sets=False
                        ).stats
                    )
                    for q in query_set
                ]
            )
        )
        ad_t = float(
            np.mean(
                [
                    ad.simulated_seconds(
                        ad.frequent_k_n_match(
                            q, k, n_range, keep_answer_sets=False
                        ).stats
                    )
                    for q in query_set
                ]
            )
        )
        igrid_t = float(
            np.mean(
                [igrid.simulated_seconds(igrid.top_k(q, k).stats) for q in query_set]
            )
        )
        rows.append([d, scan_t, ad_t, igrid_t])
    return ExperimentResult(
        experiment="Figure 14",
        description=f"response time (s) vs dimensionality, k = {k}",
        headers=["dimensionality", "scan", "AD", "IGrid"],
        rows=rows,
        notes=["paper: AD outperforms both at every dimensionality"],
    )
