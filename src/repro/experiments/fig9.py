"""Figure 9: the accuracy / attributes-retrieved trade-off of AD.

Fig. 9(a): percentage of attributes retrieved by the AD algorithm as a
function of n1 (n0 = 4) on the three high-dimensional stand-ins —
grows with n1, slowly at first.  Fig. 9(b): accuracy versus percentage
of attributes retrieved on ionosphere, with IGrid's accuracy (and its
fixed ~2/d data access) as the reference the paper reads off: AD reaches
IGrid's accuracy retrieving only 10-15% of the attributes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.ad import ADEngine
from ..data import make_uci_standin, sample_queries
from ..eval import class_stripping_accuracy, frequent_knmatch_searcher, igrid_searcher
from .common import ExperimentResult

__all__ = ["run", "FIG9_DATASETS", "fraction_retrieved"]

FIG9_DATASETS = ("ionosphere", "segmentation", "wdbc")


def fraction_retrieved(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    n_range: Tuple[int, int],
) -> float:
    """Mean fraction of attributes the AD algorithm retrieves."""
    engine = ADEngine(data)
    fractions = [
        engine.frequent_k_n_match(
            q, k, n_range, keep_answer_sets=False
        ).stats.fraction_retrieved
        for q in queries
    ]
    return float(np.mean(fractions))


def run(
    queries: int = 50,
    k: int = 20,
    seed: int = 2006,
    query_seed: int = 1,
    n0: int = 4,
    io_queries: int = 10,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 9(a) and Fig. 9(b).

    ``queries`` drives the accuracy measurements, ``io_queries`` the
    attribute-retrieval measurements (cheaper, repeated per n1).
    """
    datasets = {name: make_uci_standin(name, seed=seed) for name in FIG9_DATASETS}

    # (a) attributes retrieved vs n1
    rows_a: List[List] = []
    for name, dataset in datasets.items():
        d = dataset.dimensionality
        query_set = sample_queries(dataset.data, io_queries, seed=query_seed)
        step = max(1, d // 8)
        n1_values = sorted({*range(n0, d + 1, step), d})
        for n1 in n1_values:
            frac = fraction_retrieved(dataset.data, query_set, k, (n0, n1))
            rows_a.append([name, n1, 100.0 * frac])
    fig_a = ExperimentResult(
        experiment="Figure 9(a)",
        description=f"retrieved attributes (%) vs n1 (n0 = {n0})",
        headers=["data set", "n1", "retrieved attributes (%)"],
        rows=rows_a,
    )

    # (b) accuracy vs attributes retrieved, ionosphere, with the IGrid
    # reference point.
    dataset = datasets["ionosphere"]
    d = dataset.dimensionality
    effective_queries = min(queries, dataset.cardinality)
    query_set = sample_queries(dataset.data, io_queries, seed=query_seed)
    rows_b: List[List] = []
    for n1 in sorted({*range(n0, d + 1, 2), d}):
        frac = fraction_retrieved(dataset.data, query_set, k, (n0, n1))
        accuracy = class_stripping_accuracy(
            dataset,
            frequent_knmatch_searcher(dataset.data, (n0, n1)),
            "freq-knmatch",
            queries=effective_queries,
            k=k,
            seed=query_seed,
        ).accuracy
        rows_b.append(["AD", 100.0 * frac, accuracy])
    igrid_accuracy = class_stripping_accuracy(
        dataset,
        igrid_searcher(dataset.data),
        "igrid",
        queries=effective_queries,
        k=k,
        seed=query_seed,
    ).accuracy
    igrid_fraction = 100.0 * 2.0 / d  # [6]'s own 2/d access analysis
    rows_b.append(["IGrid (reference)", igrid_fraction, igrid_accuracy])
    fig_b = ExperimentResult(
        experiment="Figure 9(b)",
        description="accuracy vs retrieved attributes (%), ionosphere",
        headers=["technique", "retrieved attributes (%)", "accuracy"],
        rows=rows_b,
        notes=[
            "paper's reading: AD matches IGrid's accuracy with under "
            "~15% of attributes retrieved"
        ],
    )
    return fig_a, fig_b
