"""Table 4: class-stripping accuracy of IGrid, HCINN and frequent
k-n-match on the five UCI stand-ins.

Protocol (Sec. 5.1.2): 100 queries sampled from each dataset, k = 20,
accuracy = correctly-classified answers / 2000, frequent k-n-match range
[n0, n1] = [1, d].  HCINN requires a human in the loop; like the paper —
which copied its numbers from [4] because "the code of HCINN is not
available" — we report [4]'s published accuracies where they exist and
N.A. elsewhere, clearly labelled.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..data import UCI_SPECS, make_all_standins
from ..eval import (
    class_stripping_accuracy,
    frequent_knmatch_searcher,
    igrid_searcher,
    knn_searcher,
)
from .common import ExperimentResult

__all__ = ["run", "HCINN_PAPER_ACCURACY", "PAPER_TABLE4"]

#: Accuracies of HCINN as published in [4] and quoted by the paper.
HCINN_PAPER_ACCURACY: Dict[str, Optional[float]] = {
    "ionosphere": 0.86,
    "segmentation": 0.83,
    "wdbc": None,
    "glass": None,
    "iris": None,
}

#: The paper's own Table 4, for side-by-side reference in EXPERIMENTS.md.
PAPER_TABLE4: Dict[str, Dict[str, Optional[float]]] = {
    "ionosphere": {"igrid": 0.801, "hcinn": 0.86, "freq": 0.875},
    "segmentation": {"igrid": 0.799, "hcinn": 0.83, "freq": 0.873},
    "wdbc": {"igrid": 0.871, "hcinn": None, "freq": 0.925},
    "glass": {"igrid": 0.586, "hcinn": None, "freq": 0.678},
    "iris": {"igrid": 0.889, "hcinn": None, "freq": 0.896},
}


def run(
    queries: int = 100,
    k: int = 20,
    seed: int = 2006,
    query_seed: int = 1,
    include_knn: bool = True,
) -> ExperimentResult:
    """Regenerate Table 4 (plus a kNN column the paper discusses in text)."""
    datasets = make_all_standins(seed=seed)
    headers = ["data set (d)", "IGrid", "HCINN", "Freq. k-n-match"]
    if include_knn:
        headers.append("kNN (reference)")
    rows = []
    for name in UCI_SPECS:
        dataset = datasets[name]
        effective_queries = min(queries, dataset.cardinality)
        igrid = class_stripping_accuracy(
            dataset,
            igrid_searcher(dataset.data),
            "igrid",
            queries=effective_queries,
            k=k,
            seed=query_seed,
        )
        freq = class_stripping_accuracy(
            dataset,
            frequent_knmatch_searcher(dataset.data),
            "freq-knmatch",
            queries=effective_queries,
            k=k,
            seed=query_seed,
        )
        row = [
            f"{name} ({dataset.dimensionality})",
            igrid.accuracy,
            HCINN_PAPER_ACCURACY[name],
            freq.accuracy,
        ]
        if include_knn:
            knn = class_stripping_accuracy(
                dataset,
                knn_searcher(dataset.data),
                "knn",
                queries=effective_queries,
                k=k,
                seed=query_seed,
            )
            row.append(knn.accuracy)
        rows.append(row)
    return ExperimentResult(
        experiment="Table 4",
        description=(
            f"class-stripping accuracy, {queries} queries, k = {k}, "
            f"frequent k-n-match range [1, d]"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "HCINN column: accuracies published in [4] (human-in-the-loop "
            "technique; not implementable offline), as the paper itself did",
            "datasets are structural stand-ins; compare orderings, not "
            "absolute values (see DESIGN.md)",
        ],
    )
