"""Figure 12: disk AD vs scan as n1 grows.

Page accesses (a) and response time (b) of disk AD against the scan on a
16-d uniform dataset and the Texture stand-in, sweeping n1 with n0 = 4.
The paper's reading: AD's cost grows with n1, yet "the AD algorithm
beats the sequential scan even when n1 is much larger (up to 14)" of 16
on uniform data — the crossover the benchmark checks for.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..disk import DiskADEngine, DiskScanEngine
from .common import (
    ExperimentResult,
    N0_DEFAULT,
    scaled_cardinality,
    texture_workload,
    uniform_workload,
)

__all__ = ["run", "FIG12_N1_VALUES"]

FIG12_N1_VALUES = (8, 10, 12, 14, 16)


def run(
    scale: float = 1.0,
    queries: int = 3,
    k: int = 20,
    n0: int = N0_DEFAULT,
    n1_values: Sequence[int] = FIG12_N1_VALUES,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 12(a) and Fig. 12(b)."""
    workloads = {
        "uniform": uniform_workload(scaled_cardinality(100000, scale), 16, queries),
        "texture": texture_workload(scale, queries),
    }

    rows_a: List[List] = []
    rows_b: List[List] = []
    for name, (data, query_set) in workloads.items():
        ad = DiskADEngine(data)
        scan = DiskScanEngine(data)
        for n1 in n1_values:
            ad_stats = [
                ad.frequent_k_n_match(q, k, (n0, n1), keep_answer_sets=False).stats
                for q in query_set
            ]
            scan_stats = [
                scan.frequent_k_n_match(q, k, (n0, n1), keep_answer_sets=False).stats
                for q in query_set
            ]
            ad_pages = sum(s.page_reads for s in ad_stats) / len(ad_stats)
            scan_pages = sum(s.page_reads for s in scan_stats) / len(scan_stats)
            rows_a.append([name, n1, int(ad_pages), int(scan_pages)])
            ad_time = sum(ad.simulated_seconds(s) for s in ad_stats) / len(ad_stats)
            scan_time = sum(scan.simulated_seconds(s) for s in scan_stats) / len(
                scan_stats
            )
            rows_b.append([name, n1, ad_time, scan_time])

    fig_a = ExperimentResult(
        experiment="Figure 12(a)",
        description=f"page accesses vs n1 (n0 = {n0}, k = {k})",
        headers=["data set", "n1", "AD pages", "scan pages"],
        rows=rows_a,
    )
    fig_b = ExperimentResult(
        experiment="Figure 12(b)",
        description="response time (s) vs n1",
        headers=["data set", "n1", "AD", "scan"],
        rows=rows_b,
        notes=["paper: on uniform data AD still beats the scan at n1 = 14"],
    )
    return fig_a, fig_b
