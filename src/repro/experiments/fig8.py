"""Figure 8: effects of the frequent k-n-match range [n0, n1] on accuracy.

Fig. 8(a): accuracy as a function of n0 with n1 fixed at d — rises while
small-n noise matches are being excluded, then falls once the range gets
too narrow to identify frequently-appearing objects.  Fig. 8(b): accuracy
as a function of n1 with n0 fixed at 4 — decreases as n1 shrinks, slowly
at large n1 (those dimensions are dominated by dissimilarities anyway),
rapidly at small n1.  Datasets: the ionosphere, segmentation and wdbc
stand-ins, class-stripping protocol.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..data import make_uci_standin
from ..eval import class_stripping_accuracy, frequent_knmatch_searcher
from .common import ExperimentResult

__all__ = ["run", "FIG8_DATASETS", "accuracy_for_range"]

FIG8_DATASETS = ("ionosphere", "segmentation", "wdbc")


def accuracy_for_range(
    dataset,
    n_range: Tuple[int, int],
    queries: int,
    k: int,
    query_seed: int,
) -> float:
    """Class-stripping accuracy of frequent k-n-match over one range."""
    searcher = frequent_knmatch_searcher(dataset.data, n_range)
    report = class_stripping_accuracy(
        dataset,
        searcher,
        f"freq-knmatch[{n_range[0]},{n_range[1]}]",
        queries=queries,
        k=k,
        seed=query_seed,
    )
    return report.accuracy


def run(
    queries: int = 100,
    k: int = 20,
    seed: int = 2006,
    query_seed: int = 1,
    n0_fixed: int = 4,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Regenerate Fig. 8(a) (accuracy vs n0) and Fig. 8(b) (vs n1)."""
    datasets = {name: make_uci_standin(name, seed=seed) for name in FIG8_DATASETS}

    def sweep_values(d: int) -> Sequence[int]:
        step = max(1, d // 8)
        values = list(range(1, d + 1, step))
        if values[-1] != d:
            values.append(d)
        return values

    # (a) accuracy vs n0, n1 = d
    rows_a: List[List] = []
    for name, dataset in datasets.items():
        d = dataset.dimensionality
        effective_queries = min(queries, dataset.cardinality)
        for n0 in sweep_values(d):
            accuracy = accuracy_for_range(
                dataset, (n0, d), effective_queries, k, query_seed
            )
            rows_a.append([name, n0, accuracy])
    fig_a = ExperimentResult(
        experiment="Figure 8(a)",
        description="accuracy vs n0 (n1 = d)",
        headers=["data set", "n0", "accuracy"],
        rows=rows_a,
    )

    # (b) accuracy vs n1, n0 fixed
    rows_b: List[List] = []
    for name, dataset in datasets.items():
        d = dataset.dimensionality
        effective_queries = min(queries, dataset.cardinality)
        n0 = min(n0_fixed, d)
        for n1 in sweep_values(d):
            if n1 < n0:
                continue
            accuracy = accuracy_for_range(
                dataset, (n0, n1), effective_queries, k, query_seed
            )
            rows_b.append([name, n1, accuracy])
    fig_b = ExperimentResult(
        experiment="Figure 8(b)",
        description=f"accuracy vs n1 (n0 = {n0_fixed})",
        headers=["data set", "n1", "accuracy"],
        rows=rows_b,
    )
    return fig_a, fig_b
