"""Request-scoped trace context: one id that follows a query everywhere.

The span layer (:mod:`repro.obs.spans`) answers "where did the time go"
inside one process, but a served query crosses boundaries — client ->
admission -> cache -> plan -> scatter -> worker process — and nothing
ties those pieces together.  A :class:`TraceContext` is the thread that
does: a 128-bit ``trace_id`` minted per request (or accepted from the
client) plus the 64-bit id of the span that created it, carried over
HTTP in the ``X-Repro-Trace`` header using the W3C ``traceparent``
layout (``00-<32 hex trace>-<16 hex span>-<2 hex flags>``).

Determinism discipline: ids come from :class:`TraceIdGenerator`, a
seeded splitmix64 counter stream, never from wall clocks or ``os.urandom``
— two servers constructed with the same seed mint the same ids in the
same order, which is what lets the serve tests and the flight-recorder
ordering test assert exact ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TraceContext",
    "TraceIdGenerator",
    "TRACE_HEADER",
    "format_trace_header",
    "parse_trace_header",
]

#: The HTTP header carrying the trace context, both directions.
TRACE_HEADER = "X-Repro-Trace"

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    """One splitmix64 output for ``state`` (a strong 64-bit mix)."""
    z = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


@dataclass(frozen=True)
class TraceContext:
    """A request's identity: 32-hex trace id, 16-hex parent span id."""

    trace_id: str
    parent_span_id: str

    def header_value(self) -> str:
        """This context as an ``X-Repro-Trace`` header value."""
        return format_trace_header(self)


class TraceIdGenerator:
    """Deterministic trace/span id mint (seeded splitmix64 streams).

    Not thread-safe by itself; :class:`~repro.serve.server.ServeApp`
    calls it under its admission lock so concurrent requests still draw
    ids from one totally-ordered stream.

    >>> gen = TraceIdGenerator(seed=0)
    >>> ctx = gen.mint()
    >>> len(ctx.trace_id), len(ctx.parent_span_id)
    (32, 16)
    >>> TraceIdGenerator(seed=0).mint() == ctx
    True
    """

    __slots__ = ("_seed", "_counter")

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed & _MASK64
        self._counter = 0

    def mint(self) -> TraceContext:
        """The next :class:`TraceContext` in this generator's stream."""
        base = _splitmix64(self._seed ^ _splitmix64(self._counter))
        self._counter += 1
        high = _splitmix64(base)
        low = _splitmix64(base ^ 0xA5A5A5A5A5A5A5A5)
        span = _splitmix64(base ^ 0x5A5A5A5A5A5A5A5A)
        # A zero id is invalid in traceparent; the mix never yields one
        # for both halves, but guard the span id explicitly.
        if span == 0:  # pragma: no cover - astronomically unlikely
            span = 1
        return TraceContext(
            trace_id=f"{high:016x}{low:016x}", parent_span_id=f"{span:016x}"
        )


def format_trace_header(context: TraceContext) -> str:
    """``context`` in W3C traceparent layout (version 00, flags 01)."""
    return f"00-{context.trace_id}-{context.parent_span_id}-01"


def _is_hex(text: str) -> bool:
    try:
        int(text, 16)
    except ValueError:
        return False
    return True


def parse_trace_header(value: Optional[str]) -> Optional[TraceContext]:
    """Parse an incoming ``X-Repro-Trace`` value; ``None`` if malformed.

    Accepts the full traceparent form ``00-<32hex>-<16hex>-<2hex>`` and,
    leniently, a bare 32-hex trace id (parent span id becomes all
    zeros).  Parsing is deliberately forgiving — a bad header means the
    server mints a fresh context rather than rejecting the request.
    """
    if not value:
        return None
    text = value.strip().lower()
    if len(text) == 32 and _is_hex(text):
        return TraceContext(trace_id=text, parent_span_id="0" * 16)
    parts = text.split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not _is_hex(version):
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if int(trace_id, 16) == 0:
        return None
    return TraceContext(trace_id=trace_id, parent_span_id=span_id)
