"""Registry exporters: Prometheus text format and a JSON dump.

Both exporters are deterministic — families sorted by name, children by
sorted label items — so their output is diffable and golden-file
testable.  The text format follows the Prometheus exposition format
version 0.0.4 (``# HELP``/``# TYPE`` headers, cumulative ``_bucket``
series with an ``le`` label, ``_sum``/``_count`` for histograms).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "render_json", "registry_to_dict"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(items, extra: str = "") -> str:
    parts = [f'{key}="{_escape_label_value(value)}"' for key, value in items]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help_text:
            lines.append(f"# HELP {family.name} {family.help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for child in family.children():
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{_format_labels(child.labels)} "
                    f"{_format_number(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [_format_number(b) for b in child.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    le = 'le="%s"' % bound
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(child.labels, le)} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(child.labels)} "
                    f"{_format_number(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(child.labels)} "
                    f"{child.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_to_dict(registry: MetricsRegistry) -> Dict:
    """The registry as a plain JSON-serialisable dict."""
    out: Dict = {}
    for family in registry.collect():
        series = []
        for child in family.children():
            entry: Dict = {"labels": dict(child.labels)}
            if isinstance(child, (Counter, Gauge)):
                entry["value"] = child.value
            elif isinstance(child, Histogram):
                entry["buckets"] = list(child.buckets)
                entry["cumulative_counts"] = child.cumulative_counts()
                entry["sum"] = child.sum
                entry["count"] = child.count
            series.append(entry)
        out[family.name] = {
            "type": family.kind,
            "help": family.help_text,
            "series": series,
        }
    return out


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry as pretty-printed JSON text."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)
