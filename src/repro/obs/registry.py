"""Metrics primitives: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metric *families*; a family plus a
set of label values identifies one time series (a :class:`Counter`,
:class:`Gauge` or :class:`Histogram` child).  The model is deliberately
the Prometheus one — monotonic counters, set-anywhere gauges, cumulative
fixed-bucket histograms — because that is what the exporter in
:mod:`repro.obs.export` renders, but the implementation is dependency
free and in-process only.

Design constraints (see ``docs/observability.md``):

* **Exactness under threads.**  Every child guards its state with a
  lock, so counter totals are exact even when eight executor workers
  record queries concurrently.  The lock is per *child*, not per
  registry, so unrelated series never contend.
* **Cheap when absent.**  The instrumented code paths hold a registry
  reference that may be ``None``; nothing in this module runs in that
  case.  The guard convention is ``if registry is not None: ...`` at the
  call site — no no-op objects, no dynamic dispatch.
* **Fail-fast naming.**  Re-registering a name with a different type,
  help text or bucket layout raises :class:`~repro.errors.ValidationError`
  immediately; silently divergent series are worse than a crash.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COST_BUCKETS",
]

#: Latency buckets (seconds): 100 us .. 10 s in roughly 1-2.5-5 steps.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Work-counter buckets (attributes, page reads, heap pops): powers of 4.
DEFAULT_COST_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0,
)

_LabelItems = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, str]) -> _LabelItems:
    for key, value in labels.items():
        if not key.isidentifier():
            raise ValidationError(f"invalid label name {key!r}")
        if not isinstance(value, str):
            raise ValidationError(
                f"label values must be strings; got {key}={value!r}"
            )
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("labels", "_value", "_lock")

    def __init__(self, labels: _LabelItems) -> None:
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counters only go up; got inc({amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (utilisation, queue depth...)."""

    __slots__ = ("labels", "_value", "_lock")

    def __init__(self, labels: _LabelItems) -> None:
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket cumulative histogram.

    ``buckets`` are the finite upper bounds, ascending; an observation
    ``v`` lands in the first bucket with ``v <= bound`` (Prometheus
    ``le`` semantics) and every observation lands in the implicit
    ``+Inf`` bucket.  ``sum``/``count`` track the running total and the
    observation count.
    """

    __slots__ = ("labels", "buckets", "_bucket_counts", "_sum", "_count", "_lock")

    def __init__(self, labels: _LabelItems, buckets: Sequence[float]) -> None:
        self.labels = labels
        self.buckets = tuple(buckets)
        # one slot per finite bound plus the +Inf overflow slot
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValidationError("cannot observe NaN")
        # binary search over the (short, fixed) bound tuple
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._bucket_counts[lo] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_counts(self) -> List[int]:
        """Cumulative count per bound (finite bounds then ``+Inf``)."""
        with self._lock:
            raw = list(self._bucket_counts)
        total = 0
        out = []
        for slot in raw:
            total += slot
            out.append(total)
        return out


class MetricFamily:
    """All the children (label combinations) of one metric name."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.buckets = buckets
        self._children: Dict[_LabelItems, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child for this label combination, created on first use."""
        key = _freeze_labels(labels)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter(key)
                elif self.kind == "gauge":
                    child = Gauge(key)
                else:
                    child = Histogram(key, self.buckets)
                self._children[key] = child
        return child

    def children(self) -> List[object]:
        """Children in deterministic (sorted label) order."""
        with self._lock:
            return [self._children[key] for key in sorted(self._children)]


class MetricsRegistry:
    """A named collection of metric families.

    >>> registry = MetricsRegistry()
    >>> queries = registry.counter("repro_queries_total", "queries served")
    >>> queries.labels(engine="ad").inc()
    >>> registry.get("repro_queries_total").labels(engine="ad").value
    1.0
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "") -> MetricFamily:
        return self._register(name, "counter", help_text, None)

    def gauge(self, name: str, help_text: str = "") -> MetricFamily:
        return self._register(name, "gauge", help_text, None)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ValidationError("histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValidationError(
                f"histogram buckets must be strictly ascending; got {buckets}"
            )
        return self._register(name, "histogram", help_text, buckets)

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]],
    ) -> MetricFamily:
        if not name or not name.replace("_", "a").isidentifier():
            raise ValidationError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, buckets)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValidationError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        if kind == "histogram" and family.buckets != buckets:
            raise ValidationError(
                f"metric {name!r} already registered with buckets "
                f"{family.buckets}"
            )
        return family

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family called ``name``, or ``None``."""
        return self._families.get(name)

    def collect(self) -> Iterable[MetricFamily]:
        """Families in deterministic (sorted name) order."""
        with self._lock:
            names = sorted(self._families)
        return [self._families[name] for name in names]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
