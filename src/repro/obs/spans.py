"""Hierarchical phase spans: where does the time go *inside* a query?

The metrics layer (:mod:`repro.obs.registry`) aggregates whole-query
totals and :class:`~repro.obs.trace.QueryTrace` snapshots one query's
counters — neither can say whether a slow query spent its time in
cursor initialisation, heap consumption, window growth or the shard
merge.  A :class:`SpanCollector` answers that: instrumented code opens
named *spans* (``with spans.span("cursor_init"): ...``) that nest into
a tree per query, timed with the monotonic clock.

Design constraints (same discipline as :class:`~repro.obs.MetricsRegistry`,
see ``docs/observability.md``):

* **Strictly zero-cost when absent.**  Instrumented components hold a
  collector reference that may be ``None`` and guard every span with
  ``if spans is not None``; with no collector installed a hot path pays
  one attribute load and one ``is None`` branch, nothing else — no
  no-op context managers, no dynamic dispatch.  The batch smoke
  benchmark asserts this on every run.
* **Answers never change.**  Spans only *time* existing work; the
  values flowing through the engines are untouched, so results are
  bit-identical with and without a collector.
* **Thread-confined trees.**  The span stack is thread-local: a span
  opened on a worker thread becomes a root on that thread, so the
  executor's shard spans and the scatter-gather fan-out appear as
  sibling traces on their own ``thread_id`` rows (exactly how the
  Chrome ``trace_event`` viewer lays them out).  Finished root spans
  are published to a lock-guarded ring buffer shared by all threads.

On top of the collector sit a slow-query log (roots slower than a
threshold land in their own ring buffer), a Chrome ``trace_event`` JSON
exporter (loadable in ``chrome://tracing`` / Perfetto) and a
deterministic text renderer for terminals and golden tests.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ValidationError

__all__ = [
    "Span",
    "SpanCollector",
    "chrome_trace_events",
    "render_chrome_json",
    "render_span_text",
    "span_to_dict",
    "span_from_dict",
    "stitch_worker_spans",
    "PHASE_NAMES",
]

#: The span phase vocabulary.  Instrumented components only open spans
#: with these names (plus engine-qualified roots like ``"ad/k_n_match"``),
#: so dashboards and tests can rely on one spelling per phase.  See the
#: phase table in ``docs/observability.md``.
PHASE_NAMES: Tuple[str, ...] = (
    "cursor_init",    # build the 2d direction cursors / frontier heap
    "heap_consume",   # the ascending-difference pop loop (Fig. 4/6 body)
    "round",          # one epsilon round of a block engine
    "window_grow",    # the whole window-growth loop (all rounds)
    "refine",         # exact refinement of window candidates
    "rank",           # answer-set truncation + frequency ranking
    "lockstep",       # the batch engine's lock-step multi-query rounds
    "finalize",       # per-query result assembly after a lock-step run
    "batch_shard",    # one executor shard (a chunk of a query batch)
    "shard_fanout",   # scatter a query to every database shard
    "shard_call",     # one shard's engine call within a fan-out
    "merge",          # gather: merge per-shard answers to the global one
    "base_search",    # dynamic database: the static base-segment search
    "buffer_scan",    # dynamic database: brute-force delta-buffer scan
    "serve_handle",   # one HTTP request through the serving layer
    "serve_cache",    # a result-cache lookup or store within a request
    "plan",           # an engine="auto" planning decision (estimate+probes)
    "approx_filter",  # approx tier: budgeted frontier / sketch scoring
    "approx_rerank",  # approx tier: exact re-rank of filtered candidates
    "wal_append",     # LSM store: append one mutation record to the WAL
    "memtable_scan",  # LSM store: brute-force scan of the mutable tier
    "segment_search", # LSM store: one immutable segment's engine call
    "flush",          # LSM store: freeze the memtable into an L0 segment
    "compact",        # LSM store: merge one level into the next
)


class Span:
    """One timed phase: name, ``[start, end)`` on the monotonic clock.

    ``meta`` carries small scalar annotations (counters, parameters);
    ``children`` are the phases opened while this one was on top of the
    stack.  ``thread_id`` is the identity of the thread that opened the
    span — always the same for every span of one tree.
    """

    __slots__ = ("name", "start", "end", "meta", "children", "thread_id")

    def __init__(
        self, name: str, start: float, thread_id: int, meta: Dict[str, object]
    ) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.meta = meta
        self.children: List["Span"] = []
        self.thread_id = thread_id

    @property
    def duration_seconds(self) -> float:
        return self.end - self.start

    def iter_spans(self) -> Iterable["Span"]:
        """This span and every descendant, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> List["Span"]:
        """Every span called ``name`` in this tree (depth-first order)."""
        return [span for span in self.iter_spans() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class _SpanContext:
    """The context manager returned by :meth:`SpanCollector.span`."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector: "SpanCollector", span: Span) -> None:
        self._collector = collector
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector._finish(self._span)


class SpanCollector:
    """Collects span trees per thread; keeps the most recent roots.

    Parameters
    ----------
    capacity:
        Ring-buffer size for finished root spans (oldest evicted first).
    slow_threshold_seconds:
        Roots at least this slow are *also* kept in the slow-query log
        ring buffer; ``None`` disables the log entirely.
    slow_capacity:
        Ring-buffer size of the slow-query log.

    >>> spans = SpanCollector()
    >>> with spans.span("demo"):
    ...     with spans.span("phase", items=3):
    ...         pass
    >>> [s.name for s in spans.traces()[0].iter_spans()]
    ['demo', 'phase']
    """

    def __init__(
        self,
        capacity: int = 64,
        slow_threshold_seconds: Optional[float] = None,
        slow_capacity: int = 32,
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1; got {capacity}")
        if slow_capacity < 1:
            raise ValidationError(
                f"slow_capacity must be >= 1; got {slow_capacity}"
            )
        if slow_threshold_seconds is not None and slow_threshold_seconds < 0:
            raise ValidationError(
                "slow_threshold_seconds must be >= 0 or None; "
                f"got {slow_threshold_seconds}"
            )
        self.slow_threshold_seconds = slow_threshold_seconds
        #: monotonic-clock origin; Chrome timestamps are relative to it.
        self.epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=capacity)
        self._slow: deque = deque(maxlen=slow_capacity)
        self._dropped = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **meta) -> _SpanContext:
        """Open a span; use as ``with collector.span("phase"): ...``.

        The span becomes a child of the span currently open on *this*
        thread, or a new root if none is.  ``meta`` keyword values are
        stored on the span verbatim (keep them small scalars).
        """
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span = Span(name, time.perf_counter(), threading.get_ident(), meta)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return _SpanContext(self, span)

    def annotate(self, **meta) -> None:
        """Attach ``meta`` to the innermost open span of this thread.

        A no-op when no span is open, so call sites never need their own
        stack checks.
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].meta.update(meta)

    def capture_context(self, key: str = "trace_id") -> Optional[object]:
        """The innermost ``key`` annotation on this thread's open stack.

        Fan-out components call this on the *request* thread before
        handing work to pool threads, then re-attach the value to the
        spans they open over there — span trees are thread-confined, so
        this is how a worker-thread root stays correlated with the
        request that spawned it.  ``None`` when no open span carries the
        key (or no span is open at all).
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        for span in reversed(stack):
            if key in span.meta:
                return span.meta[key]
        return None

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._local.stack
        # Exceptions unwind context managers innermost-first, so the
        # finished span is always on top.
        stack.pop()
        if not stack:
            self._publish(span)

    def _publish(self, root: Span) -> None:
        threshold = self.slow_threshold_seconds
        with self._lock:
            if len(self._traces) == self._traces.maxlen:
                self._dropped += 1
            self._traces.append(root)
            if threshold is not None and root.duration_seconds >= threshold:
                self._slow.append(root)

    # ------------------------------------------------------------------
    def traces(self) -> List[Span]:
        """Snapshot of the retained root spans, oldest first."""
        with self._lock:
            return list(self._traces)

    def slow_traces(self) -> List[Span]:
        """Snapshot of the slow-query log, oldest first."""
        with self._lock:
            return list(self._slow)

    @property
    def dropped(self) -> int:
        """Roots evicted from the ring buffer since the last clear."""
        return self._dropped

    def clear(self) -> None:
        """Drop all retained traces (open spans are unaffected)."""
        with self._lock:
            self._traces.clear()
            self._slow.clear()
            self._dropped = 0


# ----------------------------------------------------------------------
# Serialisation + cross-process stitching
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> Dict:
    """``span`` (and its subtree) as plain JSON-safe dicts.

    The wire/debug form used by the procpool ``ok`` envelope and the
    serve debug endpoints; :func:`span_from_dict` round-trips it.
    """
    return {
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "thread_id": span.thread_id,
        "meta": {key: span.meta[key] for key in sorted(span.meta)},
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(payload: Dict) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output."""
    span = Span(
        str(payload["name"]),
        float(payload["start"]),
        int(payload["thread_id"]),
        dict(payload.get("meta", {})),
    )
    span.end = float(payload["end"])
    for child in payload.get("children", ()):
        span.children.append(span_from_dict(child))
    return span


def _shift_tree(span: Span, offset: float, thread_id: int) -> None:
    span.start += offset
    span.end += offset
    span.thread_id = thread_id
    for child in span.children:
        _shift_tree(child, offset, thread_id)


def stitch_worker_spans(
    parent: Span, worker_trees: List[Span], thread_id: int
) -> None:
    """Graft worker-process span trees under ``parent`` (in place).

    Worker processes time spans on *their own* monotonic clocks, which
    share no origin with the coordinator's.  Absolute alignment across
    processes is impossible without a clock-sync protocol, so we use
    the honest convention: rebase the worker trees so their earliest
    root start coincides with ``parent.start`` (the coordinator-side
    ``shard_call`` marker).  Durations are preserved exactly; only the
    origin moves.  Every stitched span takes ``thread_id`` (pass the
    worker pid) so Chrome-trace export lays each worker out on its own
    row, and ``parent.end`` is extended to cover the grafted trees.
    """
    if not worker_trees:
        return
    earliest = min(tree.start for tree in worker_trees)
    offset = parent.start - earliest
    for tree in worker_trees:
        _shift_tree(tree, offset, thread_id)
        parent.children.append(tree)
        if tree.end > parent.end:
            parent.end = tree.end


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def chrome_trace_events(
    traces: Iterable[Span],
    epoch: float = 0.0,
    process_name: str = "repro",
) -> Dict:
    """``traces`` as a Chrome ``trace_event`` JSON object (dict form).

    Emits one complete (``"ph": "X"``) event per span, with microsecond
    timestamps relative to ``epoch`` (pass the collector's
    :attr:`~SpanCollector.epoch` so concurrent traces line up), the
    span's thread id as ``tid`` and its ``meta`` as ``args``.  The
    result loads directly in ``chrome://tracing`` and Perfetto.
    """
    events: List[Dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for root in traces:
        for span in root.iter_spans():
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "repro",
                    "pid": 0,
                    "tid": span.thread_id,
                    "ts": (span.start - epoch) * 1e6,
                    "dur": span.duration_seconds * 1e6,
                    "args": {
                        key: value for key, value in sorted(span.meta.items())
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_json(
    traces: Iterable[Span], epoch: float = 0.0, indent: int = 2
) -> str:
    """:func:`chrome_trace_events` as JSON text (deterministic key order)."""
    return json.dumps(
        chrome_trace_events(traces, epoch=epoch), indent=indent, sort_keys=True
    )


def _format_meta(meta: Dict[str, object]) -> str:
    if not meta:
        return ""
    parts = [f"{key}={meta[key]}" for key in sorted(meta)]
    return "  [" + " ".join(parts) + "]"


def render_span_text(root: Span, show_times: bool = True) -> str:
    """A fixed-layout text tree of one trace.

    Deterministic given the span tree: children in recorded order, meta
    keys sorted, box-drawing guides.  ``show_times=False`` drops the
    duration column so structure can be golden-file tested.
    """
    lines: List[str] = []

    def emit(span: Span, prefix: str, child_prefix: str) -> None:
        duration = (
            f" {span.duration_seconds * 1e3:.3f}ms" if show_times else ""
        )
        lines.append(f"{prefix}{span.name}{duration}{_format_meta(span.meta)}")
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            connector = "`- " if last else "|- "
            extension = "   " if last else "|  "
            emit(child, child_prefix + connector, child_prefix + extension)

    emit(root, "", "")
    return "\n".join(lines)
