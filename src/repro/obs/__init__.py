"""repro.obs — lightweight, dependency-free metrics and tracing.

The paper's claims are *cost* claims (attributes retrieved, page
accesses), so the observability layer makes those costs first-class:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms with exact totals under threads;
* :class:`QueryTrace` — a per-query cost record derived from the
  :class:`~repro.core.types.SearchStats` every engine already returns;
* :func:`render_prometheus` / :func:`render_json` — deterministic
  exporters for scraping or archiving;
* :class:`SpanCollector` — hierarchical phase spans (where does the
  time go *inside* a query), with a slow-query log, a Chrome
  ``trace_event`` exporter and a text renderer;
* :func:`audit_result` / :func:`audit_engines` — the optimality
  auditor: each engine's attribute cost versus the Fagin-model lower
  bound of Thm 3.2/3.3 (AD audits at ratio 1.0 on tie-free data).

Instrumented components hold an optional registry and guard every
record with ``if registry is not None`` — with no registry installed
the entire layer costs one attribute load and branch per query, and
answers are bit-identical either way (instrumentation only *reads* the
stats the engines already produce).

See ``docs/observability.md`` for metric names, label conventions and
measured overhead.
"""

from .audit import (
    OptimalityReport,
    audit_engines,
    audit_result,
    examined_cost,
    fagin_lower_bound,
)
from .context import (
    TRACE_HEADER,
    TraceContext,
    TraceIdGenerator,
    format_trace_header,
    parse_trace_header,
)
from .export import registry_to_dict, render_json, render_prometheus
from .flight import FLIGHT_REASONS, FlightRecord, FlightRecorder
from .instrument import (
    observe_approx_query,
    observe_batch,
    observe_lsm_compaction,
    observe_lsm_flush,
    observe_lsm_mutation,
    observe_page_read,
    observe_pager_fault,
    observe_query,
    observe_serve_cache,
    observe_serve_request,
    observe_serve_shed,
    observe_shard_call,
    serve_inflight_gauge,
    update_lsm_gauges,
)
from .registry import (
    Counter,
    DEFAULT_COST_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .spans import (
    PHASE_NAMES,
    Span,
    SpanCollector,
    chrome_trace_events,
    render_chrome_json,
    render_span_text,
    span_from_dict,
    span_to_dict,
    stitch_worker_spans,
)
from .trace import QueryTrace, epsilon_rounds_from_stats

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "QueryTrace",
    "epsilon_rounds_from_stats",
    "Span",
    "SpanCollector",
    "PHASE_NAMES",
    "chrome_trace_events",
    "render_chrome_json",
    "render_span_text",
    "span_to_dict",
    "span_from_dict",
    "stitch_worker_spans",
    "TraceContext",
    "TraceIdGenerator",
    "TRACE_HEADER",
    "format_trace_header",
    "parse_trace_header",
    "FlightRecord",
    "FlightRecorder",
    "FLIGHT_REASONS",
    "OptimalityReport",
    "fagin_lower_bound",
    "examined_cost",
    "audit_result",
    "audit_engines",
    "render_prometheus",
    "render_json",
    "registry_to_dict",
    "observe_query",
    "observe_approx_query",
    "observe_batch",
    "observe_shard_call",
    "observe_page_read",
    "observe_pager_fault",
    "observe_serve_request",
    "observe_serve_shed",
    "observe_serve_cache",
    "observe_lsm_mutation",
    "observe_lsm_flush",
    "observe_lsm_compaction",
    "update_lsm_gauges",
    "serve_inflight_gauge",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COST_BUCKETS",
]
