"""Optimality audit: is an engine at the Fagin-model lower bound?

The paper's headline theorem is a *cost* claim: in the multiple-system
model of Fagin (one sorted list per dimension, cost = individual
attributes retrieved), the AD algorithm is optimal — Thm 3.2 for
k-n-match, Thm 3.3 for the frequent variant (whose cost equals a plain
k-``n1``-match search).  This module turns that claim into an executable
check: given a finished query result, compute the model's lower bound
and report the engine's ratio to it.

**The lower bound.**  Let ``delta`` be the final k-n-match difference
(the ``k``-th smallest n-match difference; ``n1`` for the frequent
variant, by Thm 3.3).  Thm 3.2's adversary can relabel any *unretrieved*
attribute whose difference is strictly below ``delta`` so that its point
enters the answer set — so every correct algorithm must retrieve all of
them, plus at least one attribute at ``delta`` to witness that the
``k``-th answer's difference is reached::

    lower_bound = #{attributes with |value - query_dim| < delta} + 1

**What an engine is charged.**  Frontier engines (``ad``, ``disk-ad``)
are charged their heap pops — the attributes the algorithm actually
acted on.  (Their ``attributes_retrieved`` additionally counts the at
most ``2d`` look-ahead attributes parked in the frontier when the search
stops; the pop count is the quantity Thm 3.2 bounds, and the band test
in ``tests/test_ad_optimality.py`` pins it the same way.)  Window and
scan engines have no frontier: they are charged every attribute *and*
every approximation-file / inverted-list cell they examined, because in
the Fagin model each of those is an access to per-dimension information.

On attribute-difference *tie-free* data (no two attributes at exactly
``delta``) AD's pop count equals the lower bound exactly, so its ratio
audits at 1.0 — the executable form of Thm 3.2/3.3.  With ties at
``delta`` any correct algorithm may have to consume the whole tie group,
so ratios are >= 1.0 but not necessarily 1.0; the report exposes
``attributes_at_delta`` so callers can tell the two regimes apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.distance import n_match_differences
from ..core.types import FrequentMatchResult, MatchResult, SearchStats
from ..errors import ValidationError

__all__ = [
    "OptimalityReport",
    "fagin_lower_bound",
    "examined_cost",
    "audit_result",
    "audit_engines",
]


@dataclass(frozen=True)
class OptimalityReport:
    """One engine's attribute cost versus the Fagin-model lower bound.

    Attributes
    ----------
    engine / kind:
        What produced the audited result (``kind`` is ``"k_n_match"`` or
        ``"frequent_k_n_match"``).
    k / n:
        The query parameters; ``n`` is ``n1`` for the frequent variant
        (Thm 3.3: the frequent search costs a k-``n1``-match search).
    delta:
        The exact final match difference the lower bound is built from.
    lower_bound:
        Minimum attributes any correct algorithm must examine.
    examined:
        What this engine was charged (see :func:`examined_cost`).
    attributes_at_delta:
        Number of attributes whose difference equals ``delta`` exactly;
        1 means tie-free at the stopping difference, where AD must audit
        at ratio 1.0.
    """

    engine: str
    kind: str
    k: int
    n: int
    delta: float
    lower_bound: int
    examined: int
    attributes_at_delta: int

    @property
    def ratio(self) -> float:
        """``examined / lower_bound`` — 1.0 is provably unbeatable."""
        return self.examined / self.lower_bound

    @property
    def tie_free(self) -> bool:
        """True when exactly one attribute sits at ``delta``."""
        return self.attributes_at_delta == 1

    def summary(self) -> str:
        """One-line human-readable rendering (used by the CLI)."""
        return (
            f"audit[{self.engine}/{self.kind}] delta={self.delta:.6f} "
            f"lower_bound={self.lower_bound} examined={self.examined} "
            f"ratio={self.ratio:.4f}"
            f"{'' if self.tie_free else f' (ties_at_delta={self.attributes_at_delta})'}"
        )


def fagin_lower_bound(
    data: np.ndarray, query: np.ndarray, k: int, n: int
) -> Tuple[int, float, int]:
    """``(lower_bound, delta, attributes_at_delta)`` for one query.

    ``delta`` is computed with the same float64 arithmetic the engines
    use (``n-1``-th order statistic of ``|data[i] - query|``), so the
    strict / equal comparisons below are exact, not tolerance-based.
    """
    data = np.asarray(data, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"data must be 2-D; got ndim={data.ndim}")
    c, d = data.shape
    if not 1 <= k <= c:
        raise ValidationError(f"k must be in [1, {c}]; got {k}")
    if not 1 <= n <= d:
        raise ValidationError(f"n must be in [1, {d}]; got {n}")
    differences = n_match_differences(data, query, n)
    delta = float(np.partition(differences, k - 1)[k - 1])
    attribute_differences = np.abs(data - query)
    below = int(np.count_nonzero(attribute_differences < delta))
    at_delta = int(np.count_nonzero(attribute_differences == delta))
    return below + 1, delta, at_delta


def examined_cost(stats: SearchStats) -> int:
    """Attributes (or per-dimension cells) an engine examined.

    Frontier engines report ``heap_pops`` (see the module docstring for
    why the <= 2d unread look-ahead attributes are excluded); all other
    engines are charged every attribute plus every approximation-file /
    inverted-list entry they scanned.
    """
    if stats.heap_pops:
        return stats.heap_pops
    return (
        stats.attributes_retrieved
        + stats.approximation_entries_scanned
        + stats.inverted_list_entries
    )


def audit_result(
    data: np.ndarray,
    query: np.ndarray,
    result: Union[MatchResult, FrequentMatchResult],
    engine: str = "unknown",
) -> OptimalityReport:
    """Audit one finished (frequent) k-n-match result.

    ``data``/``query`` must be the array and query the result was
    computed from — the lower bound is recomputed from first principles,
    independent of the engine, which is what makes the audit a check
    rather than a restatement.
    """
    if isinstance(result, FrequentMatchResult):
        kind = "frequent_k_n_match"
        n = result.n_range[1]
    elif isinstance(result, MatchResult):
        kind = "k_n_match"
        n = result.n
    else:
        raise ValidationError(
            f"cannot audit a {type(result).__name__}; expected a "
            "MatchResult or FrequentMatchResult"
        )
    lower_bound, delta, at_delta = fagin_lower_bound(data, query, result.k, n)
    return OptimalityReport(
        engine=engine,
        kind=kind,
        k=result.k,
        n=n,
        delta=delta,
        lower_bound=lower_bound,
        examined=examined_cost(result.stats),
        attributes_at_delta=at_delta,
    )


def audit_engines(
    db,
    query,
    k: int,
    n: int,
    engines: Optional[Sequence[str]] = None,
) -> Dict[str, OptimalityReport]:
    """Run one k-n-match per engine on ``db`` and audit each result.

    ``db`` is a :class:`~repro.core.engine.MatchDatabase` (or anything
    with ``data``, ``k_n_match(query, k, n, engine=...)`` and a default
    engine registry); ``engines`` defaults to the database's registry
    names.  Returns ``{engine name: report}`` in the order given.
    """
    if engines is None:
        from ..core.engine import ENGINE_NAMES

        engines = ENGINE_NAMES
    reports: Dict[str, OptimalityReport] = {}
    for name in engines:
        result = db.k_n_match(query, k, n, engine=name)
        reports[name] = audit_result(db.data, query, result, engine=name)
    return reports
