"""Shared instrumentation hooks: one vocabulary of metric names.

Every instrumented component (engines, the batch executor, the pager,
the disk engines) records through the helpers here, so metric names and
label conventions live in exactly one place.  See
``docs/observability.md`` for the full catalogue.

All helpers take the registry explicitly and must only be called behind
an ``if registry is not None`` guard — the guard at the call site is the
whole zero-cost story; none of these functions tolerates ``None``.
"""

from __future__ import annotations

from ..core.types import SearchStats
from .registry import (
    DEFAULT_COST_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from .trace import epsilon_rounds_from_stats

__all__ = [
    "observe_query",
    "observe_approx_query",
    "observe_batch",
    "observe_shard_call",
    "observe_page_read",
    "observe_pager_fault",
    "observe_serve_request",
    "observe_serve_shed",
    "observe_serve_cache",
    "observe_plan_decision",
    "observe_lsm_mutation",
    "observe_lsm_flush",
    "observe_lsm_compaction",
    "update_lsm_gauges",
    "serve_inflight_gauge",
    "SHARD_SIZE_BUCKETS",
    "STRAGGLER_RATIO_BUCKETS",
    "RECALL_BUCKETS",
]

#: Shard-size buckets: powers of two up to the chunked maximum.
SHARD_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Straggler-ratio buckets (slowest shard / mean shard wall time); 1.0
#: means perfectly balanced shards.
STRAGGLER_RATIO_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0)

#: Certified-recall buckets: dense near 1.0, where targets live.
RECALL_BUCKETS = (0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def observe_query(
    registry: MetricsRegistry,
    engine: str,
    kind: str,
    stats: SearchStats,
    wall_seconds: float,
    dimensionality: int,
) -> None:
    """Record one finished query on ``registry``.

    ``stats`` is the query's :class:`SearchStats` — the engines' single
    source of truth — so instrumentation can never disagree with the
    counters a result reports, and the engines' answers stay
    bit-identical whether or not a registry is installed.
    """
    labels = {"engine": engine, "kind": kind}
    registry.counter(
        "repro_queries_total", "queries executed"
    ).labels(**labels).inc()
    registry.counter(
        "repro_attributes_retrieved_total",
        "individual attributes retrieved (the paper's cost measure)",
    ).labels(**labels).inc(stats.attributes_retrieved)
    registry.counter(
        "repro_heap_pops_total", "frontier heap pops"
    ).labels(**labels).inc(stats.heap_pops)
    rounds = epsilon_rounds_from_stats(stats, dimensionality)
    registry.counter(
        "repro_epsilon_rounds_total", "block-engine window growth rounds"
    ).labels(**labels).inc(rounds)
    if stats.sequential_page_reads or stats.random_page_reads:
        pages = registry.counter(
            "repro_query_page_reads_total", "page reads charged to queries"
        )
        pages.labels(engine=engine, pattern="sequential").inc(
            stats.sequential_page_reads
        )
        pages.labels(engine=engine, pattern="random").inc(
            stats.random_page_reads
        )
    registry.histogram(
        "repro_query_seconds",
        "query wall time",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(**labels).observe(wall_seconds)
    registry.histogram(
        "repro_query_attributes",
        "attributes retrieved per query",
        buckets=DEFAULT_COST_BUCKETS,
    ).labels(**labels).observe(stats.attributes_retrieved)


def observe_approx_query(
    registry: MetricsRegistry,
    engine: str,
    kind: str,
    stats: SearchStats,
    wall_seconds: float,
    dimensionality: int,
    certified_recall: float,
) -> None:
    """Record one finished *approximate* query.

    Everything :func:`observe_query` records (same names, so exact and
    approx throughput share dashboards, separated by the engine label)
    plus the per-query recall certificate — the
    ``repro_approx_certified_recall`` histogram is the live view of how
    much certified quality the configured budgets are actually buying.
    """
    observe_query(registry, engine, kind, stats, wall_seconds, dimensionality)
    registry.histogram(
        "repro_approx_certified_recall",
        "certified (provable lower-bound) recall per approximate query",
        buckets=RECALL_BUCKETS,
    ).labels(engine=engine, kind=kind).observe(certified_recall)


def observe_batch(
    registry: MetricsRegistry,
    engine: str,
    queries: int,
    shard_sizes,
    shard_seconds,
    worker_busy_seconds,
    wall_seconds: float,
) -> None:
    """Record one executor batch: shards, stragglers, worker utilisation."""
    labels = {"engine": engine}
    registry.counter(
        "repro_batches_total", "executor batches run"
    ).labels(**labels).inc()
    registry.counter(
        "repro_batch_queries_total", "queries run through the executor"
    ).labels(**labels).inc(queries)
    size_histogram = registry.histogram(
        "repro_batch_shard_queries",
        "queries per shard",
        buckets=SHARD_SIZE_BUCKETS,
    ).labels(**labels)
    time_histogram = registry.histogram(
        "repro_batch_shard_seconds",
        "shard wall time",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(**labels)
    for size, seconds in zip(shard_sizes, shard_seconds):
        size_histogram.observe(size)
        time_histogram.observe(seconds)
    if shard_seconds:
        mean = sum(shard_seconds) / len(shard_seconds)
        ratio = (max(shard_seconds) / mean) if mean > 0 else 1.0
        registry.histogram(
            "repro_batch_straggler_ratio",
            "slowest shard / mean shard wall time per batch",
            buckets=STRAGGLER_RATIO_BUCKETS,
        ).labels(**labels).observe(ratio)
    utilisation = registry.gauge(
        "repro_batch_worker_utilization",
        "per-worker busy fraction of the last batch",
    )
    busy_total = registry.counter(
        "repro_batch_worker_busy_seconds_total",
        "cumulative per-worker busy time",
    )
    for index, busy in enumerate(worker_busy_seconds):
        worker = str(index)
        busy_total.labels(engine=engine, worker=worker).inc(busy)
        utilisation.labels(engine=engine, worker=worker).set(
            busy / wall_seconds if wall_seconds > 0 else 0.0
        )


def observe_shard_call(
    registry: MetricsRegistry,
    shard: str,
    engine: str,
    kind: str,
    queries: int,
    stats: SearchStats,
    wall_seconds: float,
    partitioner: str = "",
    backend: str = "",
) -> None:
    """Record one per-shard engine call of a scatter-gather fan-out.

    A *call* covers every query of the scattered request on that shard
    (one for a single query, the batch size for a ``*_batch``); ``stats``
    is the shard's rolled-up :class:`SearchStats` for the call.  The
    shard-labelled counters expose per-partition skew — the signal for
    choosing a partitioner, which is why the partitioner name is itself
    a label — while the logical-query counters
    (``repro_queries_total``...) stay un-inflated because the shard
    layer, not the per-shard engines, is the metered component.
    ``backend`` says where the call ran (``thread`` in-process,
    ``process`` in a shared-memory pool worker — there ``wall_seconds``
    is the worker's own wall time, shipped back in the result
    envelope).
    """
    labels = {
        "shard": shard,
        "engine": engine,
        "kind": kind,
        "partitioner": partitioner,
        "backend": backend,
    }
    registry.counter(
        "repro_shard_calls_total", "per-shard engine calls in scatter-gather"
    ).labels(**labels).inc()
    registry.counter(
        "repro_shard_queries_total", "queries scattered to a shard"
    ).labels(**labels).inc(queries)
    registry.counter(
        "repro_shard_attributes_retrieved_total",
        "attributes retrieved within a shard",
    ).labels(**labels).inc(stats.attributes_retrieved)
    registry.histogram(
        "repro_shard_call_seconds",
        "per-shard wall time of one scatter call",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(**labels).observe(wall_seconds)
    # The same wall time under the worker-centric label set: one series
    # per backend (not per shard), the honest thread-vs-process
    # comparison a dashboard wants without the shard-cardinality fan.
    registry.histogram(
        "repro_shard_worker_seconds",
        "per-worker wall time of one scatter call, by backend",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(engine=engine, kind=kind, backend=backend).observe(wall_seconds)


def observe_serve_request(
    registry: MetricsRegistry,
    endpoint: str,
    status: int,
    wall_seconds: float,
    queue_seconds: float,
) -> None:
    """Record one finished HTTP request of the serving layer.

    ``endpoint`` is the request path (``/v1/query``...), ``status`` the
    HTTP status sent, ``wall_seconds`` the whole in-server handling time
    and ``queue_seconds`` the admission queue wait (0 for requests that
    never queued — GETs, early 4xx rejections).
    """
    labels = {"endpoint": endpoint, "status": str(status)}
    registry.counter(
        "repro_serve_requests_total", "HTTP requests served"
    ).labels(**labels).inc()
    registry.histogram(
        "repro_serve_request_seconds",
        "in-server request handling time",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(endpoint=endpoint).observe(wall_seconds)
    registry.histogram(
        "repro_serve_queue_seconds",
        "admission queue wait before a request runs",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(endpoint=endpoint).observe(queue_seconds)


def observe_serve_shed(
    registry: MetricsRegistry, endpoint: str, reason: str
) -> None:
    """Record one load-shed (429) decision (``reason``: queue_full /
    deadline)."""
    registry.counter(
        "repro_serve_sheds_total", "requests shed by admission control"
    ).labels(endpoint=endpoint, reason=reason).inc()


def observe_serve_cache(
    registry: MetricsRegistry,
    endpoint: str,
    event: str,
    evictions: int = 0,
) -> None:
    """Record one result-cache outcome (``event``: hit / miss / bypass).

    ``evictions`` is the number of entries evicted while storing the
    miss, counted separately under ``repro_serve_cache_evictions_total``.
    """
    if event == "hit":
        registry.counter(
            "repro_serve_cache_hits_total", "result-cache hits"
        ).labels(endpoint=endpoint).inc()
    elif event == "miss":
        registry.counter(
            "repro_serve_cache_misses_total", "result-cache misses"
        ).labels(endpoint=endpoint).inc()
    if evictions:
        registry.counter(
            "repro_serve_cache_evictions_total", "result-cache evictions"
        ).labels().inc(evictions)


def observe_plan_decision(
    registry: MetricsRegistry,
    engine: str,
    kind: str,
    predicted_seconds: float,
    actual_seconds: float,
    fanout: int = 1,
) -> None:
    """Record one executed ``engine="auto"`` planning decision.

    ``engine`` is the concrete engine the planner resolved to, ``kind``
    the query kind planned, and the two latency series put the model's
    prediction next to what the query actually took — the drift signal
    for re-calibrating a stale plan-model sidecar.  ``fanout`` is the
    shard fan-out the plan scattered to (1 on a flat database).
    """
    labels = {"engine": engine, "kind": kind}
    registry.counter(
        "repro_plan_decisions_total",
        "engine=auto queries by resolved engine",
    ).labels(**labels).inc()
    registry.histogram(
        "repro_plan_predicted_seconds",
        "planner-predicted per-query cost",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(**labels).observe(predicted_seconds)
    registry.histogram(
        "repro_plan_actual_seconds",
        "measured per-query cost of planned queries",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(**labels).observe(actual_seconds)
    if fanout > 1:
        registry.counter(
            "repro_plan_fanout_total",
            "shard calls scattered by planned queries",
        ).labels(**labels).inc(fanout)


def observe_lsm_mutation(
    registry: MetricsRegistry, op: str, wal_bytes: int, wall_seconds: float
) -> None:
    """Record one LSM mutation (``op``: insert / delete) and its WAL cost."""
    registry.counter(
        "repro_lsm_mutations_total", "LSM store mutations applied"
    ).labels(op=op).inc()
    registry.counter(
        "repro_lsm_wal_bytes_total", "bytes appended to the write-ahead log"
    ).labels().inc(wal_bytes)
    registry.histogram(
        "repro_lsm_mutation_seconds",
        "wall time of one LSM mutation (WAL append included)",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(op=op).observe(wall_seconds)


def observe_lsm_flush(
    registry: MetricsRegistry,
    rows: int,
    bytes_written: int,
    wall_seconds: float,
) -> None:
    """Record one memtable flush into an L0 segment."""
    registry.counter(
        "repro_lsm_flushes_total", "memtable flushes into L0 segments"
    ).labels().inc()
    registry.counter(
        "repro_lsm_flush_rows_total", "live rows frozen by flushes"
    ).labels().inc(rows)
    registry.counter(
        "repro_lsm_segment_bytes_total", "segment bytes written to disk"
    ).labels(cause="flush").inc(bytes_written)
    registry.histogram(
        "repro_lsm_flush_seconds",
        "wall time of one memtable flush",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels().observe(wall_seconds)


def observe_lsm_compaction(
    registry: MetricsRegistry,
    level: int,
    segments_merged: int,
    rows_in: int,
    rows_out: int,
    wall_seconds: float,
    bytes_written: int,
) -> None:
    """Record one finished level compaction.

    ``rows_in - rows_out`` is the garbage (tombstoned rows) the merge
    reclaimed; the byte counter shares its name with the flush series,
    split by the ``cause`` label, so total write amplification is one
    sum over ``repro_lsm_segment_bytes_total``.
    """
    labels = {"level": str(level)}
    registry.counter(
        "repro_lsm_compactions_total", "level compactions completed"
    ).labels(**labels).inc()
    registry.counter(
        "repro_lsm_compaction_rows_total", "rows read by compactions"
    ).labels(**labels).inc(rows_in)
    registry.counter(
        "repro_lsm_compaction_reclaimed_total",
        "tombstoned rows dropped by compactions",
    ).labels(**labels).inc(rows_in - rows_out)
    registry.counter(
        "repro_lsm_segment_bytes_total", "segment bytes written to disk"
    ).labels(cause="compact").inc(bytes_written)
    registry.histogram(
        "repro_lsm_compaction_seconds",
        "wall time of one level compaction",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).labels(**labels).observe(wall_seconds)


def update_lsm_gauges(registry: MetricsRegistry, store) -> None:
    """Refresh the point-in-time LSM gauges from a store's current state.

    Called after mutations, flushes and compactions — cheap reads of
    counters the store already maintains.
    """
    for entry in store.level_layout():
        registry.gauge(
            "repro_lsm_segments", "segments per LSM level"
        ).labels(level=str(entry["level"])).set(entry["segments"])
    registry.gauge(
        "repro_lsm_memtable_rows", "rows in the mutable memtable tier"
    ).labels().set(store.memtable_size)
    registry.gauge(
        "repro_lsm_tombstones", "live tombstones awaiting compaction"
    ).labels().set(store.tombstone_count)
    registry.gauge(
        "repro_lsm_live_points", "live (queryable) points in the store"
    ).labels().set(store.cardinality)
    registry.gauge(
        "repro_lsm_wal_bytes", "current write-ahead log size"
    ).labels().set(store.wal_bytes)
    registry.gauge(
        "repro_lsm_write_amplification",
        "segment bytes written per user byte inserted",
    ).labels().set(store.write_amplification)


def serve_inflight_gauge(registry: MetricsRegistry):
    """The gauge tracking currently-executing serve requests."""
    return registry.gauge(
        "repro_serve_inflight", "requests currently holding an admission slot"
    ).labels()


def observe_page_read(registry: MetricsRegistry, sequential: bool) -> None:
    """Record one pager-level page read (called from the recorder)."""
    registry.counter(
        "repro_pager_reads_total", "pages served by the pager"
    ).labels(pattern="sequential" if sequential else "random").inc()


def observe_pager_fault(registry: MetricsRegistry, kind: str) -> None:
    """Record one injected pager fault (``kind``: hard / corruption)."""
    registry.counter(
        "repro_pager_faults_total", "injected storage faults"
    ).labels(kind=kind).inc()
