"""Flight recorder: the last N interesting requests, in full.

Metrics aggregate and the span ring buffer keeps *every* recent trace,
interesting or not — so by the time someone asks "why was that request
slow at 3am", the evidence is usually gone.  A :class:`FlightRecorder`
is the serving layer's black box: a small lock-guarded ring buffer into
which :class:`~repro.serve.server.ServeApp` deposits the **complete**
record of every slow, shed, or failed request — trace id, the stitched
span tree, the engine/plan/mode decision, the cache event, queue and
handle time, status — retrievable later via ``GET /v1/debug/flight``,
``GET /v1/debug/trace/<trace_id>`` or the ``repro flight`` CLI.

Discipline matches the rest of :mod:`repro.obs`:

* recording is O(1) append under one lock, and only fires for requests
  that trip a trigger (so the happy path pays a float compare);
* ``capacity=0`` disables the recorder entirely;
* snapshots are deterministic — records carry a monotone sequence
  number assigned under the lock, and exports order by it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ValidationError
from .spans import Span, chrome_trace_events, span_to_dict

__all__ = ["FlightRecord", "FlightRecorder", "FLIGHT_REASONS"]

#: Why a request landed in the recorder, in increasing-precedence
#: order: a shed request is always recorded as ``shed`` even if it was
#: also slow; an errored one as ``error``.
FLIGHT_REASONS = ("slow", "error", "shed")


@dataclass
class FlightRecord:
    """One recorded request, complete enough to diagnose offline."""

    seq: int
    trace_id: str
    reason: str
    method: str
    path: str
    status: int
    queue_ms: float
    handle_ms: float
    detail: Dict[str, object] = field(default_factory=dict)
    span: Optional[Span] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form (canonical key order is the caller's job)."""
        payload: Dict[str, object] = {
            "seq": self.seq,
            "trace_id": self.trace_id,
            "reason": self.reason,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "queue_ms": self.queue_ms,
            "handle_ms": self.handle_ms,
            "detail": {key: self.detail[key] for key in sorted(self.detail)},
        }
        payload["span"] = (
            span_to_dict(self.span) if self.span is not None else None
        )
        return payload

    def chrome_trace(self, epoch: float = 0.0) -> Dict:
        """This record's span tree as a Chrome ``trace_event`` object."""
        traces = [self.span] if self.span is not None else []
        return chrome_trace_events(traces, epoch=epoch)


class FlightRecorder:
    """Lock-guarded ring buffer of :class:`FlightRecord` entries.

    >>> recorder = FlightRecorder(capacity=2)
    >>> for path in ("/a", "/b", "/c"):
    ...     _ = recorder.record(
    ...         trace_id=path.strip("/"), reason="slow", method="POST",
    ...         path=path, status=200, queue_ms=0.0, handle_ms=1.0,
    ...     )
    >>> [record.path for record in recorder.snapshot()]
    ['/b', '/c']
    >>> recorder.dropped
    1
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0; got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=capacity if capacity else 1)
        self._dropped = 0
        self._seq = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(
        self,
        trace_id: str,
        reason: str,
        method: str,
        path: str,
        status: int,
        queue_ms: float,
        handle_ms: float,
        detail: Optional[Dict[str, object]] = None,
        span: Optional[Span] = None,
    ) -> Optional[FlightRecord]:
        """Deposit one record; returns it, or ``None`` when disabled."""
        if reason not in FLIGHT_REASONS:
            raise ValidationError(
                f"reason must be one of {FLIGHT_REASONS}; got {reason!r}"
            )
        if not self.capacity:
            return None
        with self._lock:
            seq = self._seq
            self._seq += 1
            record = FlightRecord(
                seq=seq,
                trace_id=trace_id,
                reason=reason,
                method=method,
                path=path,
                status=status,
                queue_ms=queue_ms,
                handle_ms=handle_ms,
                detail=dict(detail or {}),
                span=span,
            )
            if len(self._records) == self._records.maxlen:
                self._dropped += 1
            self._records.append(record)
        return record

    # ------------------------------------------------------------------
    def snapshot(self) -> List[FlightRecord]:
        """Retained records, oldest first (sequence-number order)."""
        with self._lock:
            return list(self._records)

    def find(self, trace_id: str) -> Optional[FlightRecord]:
        """The most recent record for ``trace_id``, or ``None``."""
        with self._lock:
            for record in reversed(self._records):
                if record.trace_id == trace_id:
                    return record
        return None

    @property
    def dropped(self) -> int:
        """Records evicted since the last :meth:`clear`."""
        return self._dropped

    @property
    def recorded(self) -> int:
        """Total records deposited since the last :meth:`clear`."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0
            self._seq = 0
