"""Per-query tracing: one :class:`QueryTrace` per executed query.

A trace is the human-readable counterpart of the metric counters: where
the registry aggregates ("1.2M attributes retrieved across 40k
queries"), the trace answers "what did *this* query cost".  Traces are
derived purely from the :class:`~repro.core.types.SearchStats` every
engine already returns — the engines' answers and counters are
untouched — plus a wall-clock measurement taken by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.types import SearchStats

__all__ = ["QueryTrace", "epsilon_rounds_from_stats"]


def epsilon_rounds_from_stats(stats: SearchStats, dimensionality: int) -> int:
    """Epsilon rounds implied by a block engine's probe counter.

    The block engines spend ``d`` probes locating the query plus ``2d``
    probes (one window per dimension, two bisections each) per epsilon
    round, so ``rounds = (probes - d) / 2d``.  Heap-based AD and the
    scan engines never grow windows: their probe budget is at most the
    initial ``d`` locate pass, and this returns 0.
    """
    if dimensionality <= 0:
        return 0
    extra = stats.binary_search_probes - dimensionality
    if extra <= 0:
        return 0
    return extra // (2 * dimensionality)


@dataclass(frozen=True)
class QueryTrace:
    """What one query cost, across every cost axis the engines track.

    Attributes
    ----------
    engine:
        Name of the engine that executed the query (``"ad"``,
        ``"block-ad"``...).
    kind:
        ``"k_n_match"`` or ``"frequent_k_n_match"``.
    k / n_range:
        The query parameters (``n_range == (n, n)`` for plain
        k-n-match).
    epsilon_rounds:
        Window-growth rounds (block engines; 0 for heap AD and scans).
    attributes_retrieved / heap_pops / page_reads:
        Copied from the query's :class:`SearchStats`.
    wall_time_seconds:
        End-to-end wall clock of the engine call, measured by the
        caller that requested the trace.
    stats:
        The full underlying :class:`SearchStats` for anything not
        surfaced as a first-class field.
    trace_id:
        The request-level :class:`~repro.obs.TraceContext` id this
        query executed under, when one was in scope (served queries
        with a span collector installed); ``None`` for standalone
        calls.
    """

    engine: str
    kind: str
    k: int
    n_range: Tuple[int, int]
    epsilon_rounds: int
    attributes_retrieved: int
    heap_pops: int
    page_reads: int
    wall_time_seconds: float
    stats: Optional[SearchStats] = None
    trace_id: Optional[str] = None

    @classmethod
    def from_stats(
        cls,
        engine: str,
        kind: str,
        k: int,
        n_range: Tuple[int, int],
        stats: SearchStats,
        wall_time_seconds: float,
        dimensionality: int,
        trace_id: Optional[str] = None,
    ) -> "QueryTrace":
        """Build a trace from a result's stats plus a wall-time sample."""
        return cls(
            engine=engine,
            kind=kind,
            k=k,
            n_range=tuple(n_range),
            epsilon_rounds=epsilon_rounds_from_stats(stats, dimensionality),
            attributes_retrieved=stats.attributes_retrieved,
            heap_pops=stats.heap_pops,
            page_reads=stats.page_reads,
            wall_time_seconds=wall_time_seconds,
            stats=stats,
            trace_id=trace_id,
        )

    def summary(self) -> str:
        """One-line human-readable rendering (used by the CLI)."""
        text = (
            f"trace[{self.engine}/{self.kind}] k={self.k} "
            f"n={self.n_range[0]}:{self.n_range[1]} "
            f"rounds={self.epsilon_rounds} "
            f"attrs={self.attributes_retrieved} pops={self.heap_pops} "
            f"pages={self.page_reads} wall={self.wall_time_seconds * 1e3:.3f}ms"
        )
        if self.trace_id is not None:
            text += f" trace_id={self.trace_id}"
        return text
