"""Two-phase (frequent) k-n-match search over a VA-file (Sec. 4.2).

Phase 1 scans the approximation and computes, for each point, lower and
upper bounds of its n-match difference.  For each ``n`` the k-th smallest
*upper* bound is a pruning threshold: any point whose *lower* bound
exceeds it cannot belong to the k-n-match set.  Phase 2 fetches the
surviving candidates from the heap file (page accesses in id order, still
mostly random for scattered survivors — the effect behind Fig. 10(b)) and
resolves the exact answer sets among them.

Correctness: every true member of the k-n-match set has a true n-match
difference no greater than the k-th smallest true difference, which in
turn is no greater than the k-th smallest upper bound; its lower bound is
no greater than its true difference, so it survives pruning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import validation
from ..core.types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency
from ..storage import DEFAULT_DISK_MODEL, DiskModel, Pager
from .vafile import VAFile

__all__ = ["VAFileEngine"]


class VAFileEngine:
    """Compression-based competitor for the (frequent) k-n-match query."""

    name = "va-file"

    def __init__(
        self,
        data,
        bits: int = 8,
        pager: Optional[Pager] = None,
        disk_model: DiskModel = DEFAULT_DISK_MODEL,
    ) -> None:
        self.disk_model = disk_model
        self._va = VAFile(data, bits=bits, pager=pager, disk_model=disk_model)

    @property
    def va_file(self) -> VAFile:
        return self._va

    @property
    def pager(self) -> Pager:
        return self._va.pager

    @property
    def cardinality(self) -> int:
        return self._va.cardinality

    @property
    def dimensionality(self) -> int:
        return self._va.dimensionality

    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """Two-phase k-n-match: prune on bounds, refine the survivors."""
        c, d = self.cardinality, self.dimensionality
        k = validation.validate_k(k, c)
        n = validation.validate_n(n, d)
        query = validation.as_query_array(query, d)

        baseline = self._io_snapshot()
        self._va.scan_approximation()
        lb, ub = self._va.match_difference_bounds(query, n)
        threshold = np.partition(ub, k - 1)[k - 1]
        candidates = np.flatnonzero(lb <= threshold)

        rows = self._va.fetch_points(candidates)
        deltas = np.abs(rows.astype(np.float64) - query)
        diffs = np.partition(deltas, n - 1, axis=1)[:, n - 1]
        order = np.lexsort((candidates, diffs))[:k]
        stats = self._make_stats(baseline, candidates.shape[0])
        return MatchResult(
            ids=[int(candidates[i]) for i in order],
            differences=[float(diffs[i]) for i in order],
            k=k,
            n=n,
            stats=stats,
        )

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Two-phase frequent k-n-match.

        One approximation scan yields bounds for every ``n`` in the range
        (the bound matrices are sorted once per point); the candidate set
        is the union of the per-n survivors.
        """
        c, d = self.cardinality, self.dimensionality
        k = validation.validate_k(k, c)
        n0, n1 = validation.validate_n_range(n_range, d)
        query = validation.as_query_array(query, d)

        baseline = self._io_snapshot()
        self._va.scan_approximation()
        lower, upper = self._va.all_difference_bounds(query)
        lower.sort(axis=1)
        upper.sort(axis=1)

        candidate_mask = np.zeros(c, dtype=bool)
        for n in range(n0, n1 + 1):
            lb = lower[:, n - 1]
            ub = upper[:, n - 1]
            threshold = np.partition(ub, k - 1)[k - 1]
            candidate_mask |= lb <= threshold
        candidates = np.flatnonzero(candidate_mask)

        rows = self._va.fetch_points(candidates)
        profiles = np.sort(np.abs(rows.astype(np.float64) - query), axis=1)
        answer_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            order = np.lexsort((candidates, profiles[:, n - 1]))[:k]
            answer_sets[n] = [int(candidates[i]) for i in order]
        chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = self._make_stats(baseline, candidates.shape[0])
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    def simulated_seconds(self, stats: SearchStats) -> float:
        """Response time of ``stats`` under this engine's disk model."""
        return self.disk_model.simulated_seconds(stats)

    # ------------------------------------------------------------------
    def _io_snapshot(self) -> Tuple[int, int]:
        recorder = self.pager.recorder
        recorder.forget_streams()  # measure each query cold
        return recorder.sequential_reads, recorder.random_reads

    def _make_stats(self, baseline: Tuple[int, int], refined: int) -> SearchStats:
        c, d = self.cardinality, self.dimensionality
        recorder = self.pager.recorder
        return SearchStats(
            attributes_retrieved=refined * d,
            total_attributes=c * d,
            approximation_entries_scanned=c * d,
            candidates_refined=refined,
            sequential_page_reads=recorder.sequential_reads - baseline[0],
            random_page_reads=recorder.random_reads - baseline[1],
        )
