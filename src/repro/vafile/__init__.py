"""VA-file adaptation for the (frequent) k-n-match query (Sec. 4.2)."""

from .quantizer import VAQuantizer
from .search import VAFileEngine
from .vafile import VAFile

__all__ = ["VAQuantizer", "VAFile", "VAFileEngine"]
