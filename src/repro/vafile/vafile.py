"""The VA-file structure: approximation pages + the exact heap file.

Build-time, every point is quantized (:class:`VAQuantizer`) and the cell
numbers are stored in approximation pages; the exact points go into a
:class:`~repro.storage.HeapFile` on the same pager.  At query time phase 1
scans the approximation pages sequentially and phase 2 fetches surviving
candidates from the heap file — the access split whose cost the paper
measures in Fig. 10.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core import validation
from ..storage import DEFAULT_DISK_MODEL, DiskModel, HeapFile, Pager
from .quantizer import VAQuantizer

__all__ = ["VAFile"]


class VAFile:
    """Vector-approximation file over a point set."""

    def __init__(
        self,
        data,
        bits: int = 8,
        pager: Optional[Pager] = None,
        disk_model: DiskModel = DEFAULT_DISK_MODEL,
    ) -> None:
        array = validation.as_database_array(data)
        self.disk_model = disk_model
        self._pager = pager if pager is not None else Pager(disk_model.page_size)
        self.quantizer = VAQuantizer(array, bits=bits)
        self._approximation = self.quantizer.encode(array)  # (c, d) uint16
        self._heap = HeapFile(array, self._pager)

        # Approximation pages: bit-packed size as the paper counts it.
        approx_bytes = self.quantizer.bytes_per_point() * array.shape[0]
        page_size = self._pager.page_size
        self._approx_first_page = self._pager.page_count
        self._approx_page_count = max(1, -(-approx_bytes // page_size))
        for _ in range(self._approx_page_count):
            self._pager.allocate()

    # ------------------------------------------------------------------
    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def heap_file(self) -> HeapFile:
        return self._heap

    @property
    def approximation(self) -> np.ndarray:
        """The in-memory mirror of the approximation file."""
        return self._approximation

    @property
    def approximation_page_count(self) -> int:
        return self._approx_page_count

    @property
    def cardinality(self) -> int:
        return self._heap.cardinality

    @property
    def dimensionality(self) -> int:
        return self._heap.dimensionality

    # ------------------------------------------------------------------
    def scan_approximation(self) -> np.ndarray:
        """Phase-1 sequential sweep of the approximation pages.

        Drives the page recorder (all sequential) and returns the cell
        matrix.  The numeric payload comes from the in-memory mirror —
        the pages carry the cost model, the mirror carries the data.
        """
        stream = f"va-scan@{self._approx_first_page}"
        for index in range(self._approx_page_count):
            self._pager.read(self._approx_first_page + index, stream)
        return self._approximation

    def match_difference_bounds(
        self, query: np.ndarray, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-point lower/upper bounds of the n-match difference.

        The true per-dimension difference lies within the quantizer's
        ``[lower_j, upper_j]``; order statistics are monotone, so the
        n-th smallest lower (upper) bound is a valid lower (upper) bound
        of the n-th smallest true difference.
        """
        lower, upper = self.all_difference_bounds(query)
        lb = np.partition(lower, n - 1, axis=1)[:, n - 1]
        ub = np.partition(upper, n - 1, axis=1)[:, n - 1]
        return lb, ub

    def all_difference_bounds(self, query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(c, d)`` lower and upper difference-bound matrices."""
        c, d = self._approximation.shape
        query = validation.as_query_array(query, d)
        lower = np.empty((c, d), dtype=np.float64)
        upper = np.empty((c, d), dtype=np.float64)
        for j in range(d):
            lower[:, j], upper[:, j] = self.quantizer.difference_bounds(
                j, self._approximation[:, j], float(query[j])
            )
        return lower, upper

    def fetch_points(self, ids) -> np.ndarray:
        """Phase-2 exact retrieval of candidate points (random-ish I/O)."""
        return self._heap.fetch_points(ids)
