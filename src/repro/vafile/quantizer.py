"""Scalar quantizer for the VA-file approximation.

The VA-file (Weber, Schek, Blott; VLDB 1998) partitions each dimension
into ``2^bits`` slices and stores, per point, only the slice number of
each attribute.  The paper's adaptation (Sec. 4.2) uses 8 bits per
dimension, "which makes the size of the VA-file 25% of the size of the
original data set" (attributes being 4-byte floats).

For a query attribute ``q`` and a point whose attribute lies somewhere in
cell ``[lo, hi]``, the absolute difference is bounded by

* lower bound: ``0`` if ``q`` is inside the cell, else the distance from
  ``q`` to the nearer cell edge;
* upper bound: the distance from ``q`` to the farther cell edge.

Both bounds are exposed vectorised over a whole approximation column, as
phase 1 of the search scans every point.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core import validation
from ..errors import ValidationError

__all__ = ["VAQuantizer"]


class VAQuantizer:
    """Uniform scalar quantizer with per-dimension domains."""

    def __init__(self, data, bits: int = 8) -> None:
        if not 1 <= bits <= 16:
            raise ValidationError(f"bits must be within [1, 16]; got {bits}")
        array = validation.as_database_array(data)
        self.bits = bits
        self.cells = 1 << bits
        # Per-dimension domain, padded marginally so max values land in
        # the last cell rather than one past it.
        self._lo = array.min(axis=0)
        hi = array.max(axis=0)
        span = np.where(hi > self._lo, hi - self._lo, 1.0)
        self._width = span / self.cells
        self.dimensionality = array.shape[1]

    @property
    def low(self) -> np.ndarray:
        """Per-dimension domain minimum."""
        return self._lo

    @property
    def cell_width(self) -> np.ndarray:
        """Per-dimension cell width."""
        return self._width

    # ------------------------------------------------------------------
    def encode(self, points) -> np.ndarray:
        """Cell number of every attribute; shape preserved, dtype uint16.

        (uint8 when ``bits <= 8`` would also fit; uint16 keeps the code
        simple for the ablation that sweeps ``bits``.)
        """
        points = np.asarray(points, dtype=np.float64)
        cells = np.floor((points - self._lo) / self._width).astype(np.int64)
        return np.clip(cells, 0, self.cells - 1).astype(np.uint16)

    def cell_bounds(self, dimension: int, cells: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``[lo, hi]`` interval of the given cells in one dimension."""
        self._check_dimension(dimension)
        lo = self._lo[dimension] + cells.astype(np.float64) * self._width[dimension]
        return lo, lo + self._width[dimension]

    def difference_bounds(
        self, dimension: int, cells: np.ndarray, query_value: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-point lower/upper bounds of ``|attribute - query_value|``.

        Valid for any true attribute inside its cell, including attributes
        that sit exactly on a cell edge.
        """
        lo, hi = self.cell_bounds(dimension, cells)
        below = query_value - hi  # positive when q is above the cell
        above = lo - query_value  # positive when q is below the cell
        lower = np.maximum(np.maximum(below, above), 0.0)
        upper = np.maximum(hi - query_value, query_value - lo)
        return lower, upper

    def _check_dimension(self, dimension: int) -> None:
        if not 0 <= dimension < self.dimensionality:
            raise ValidationError(
                f"dimension {dimension} out of range [0, {self.dimensionality})"
            )

    def bytes_per_point(self) -> int:
        """Approximation bytes per point (bit-packed as the paper counts)."""
        return (self.bits * self.dimensionality + 7) // 8
