"""Equi-depth partitioning for the IGrid index.

IGrid (Aggarwal & Yu, KDD 2000 — the paper's reference [6]) discretises
each dimension into ranges "based on equi-depth partitioning in a
pre-processing phase": each range holds (about) the same number of
points, so a query's range always pulls (about) ``c / bins`` inverted
entries regardless of skew.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["EquiDepthPartition", "default_bin_count"]


def default_bin_count(dimensionality: int) -> int:
    """The paper's sizing: ``d / 2`` ranges per dimension.

    [6]'s analysis puts the accessed data at ``2/d`` of the database:
    each of the ``d`` query ranges holds a ``1/bins`` fraction of the
    points, so ``bins = d / 2`` gives ``d * (1/bins) = 2/d`` of all
    attributes.  At least 2 ranges, always.
    """
    return max(2, dimensionality // 2)


class EquiDepthPartition:
    """Equi-depth ranges of one dimension."""

    def __init__(self, values, bins: int) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValidationError("values must be a non-empty 1-D array")
        if bins < 1:
            raise ValidationError(f"bins must be >= 1; got {bins}")
        quantiles = np.quantile(values, np.linspace(0.0, 1.0, bins + 1))
        # Collapse duplicate boundaries (heavy ties) but keep the span.
        self.boundaries = np.unique(quantiles)
        self.bins = self.boundaries.shape[0] - 1
        if self.bins < 1:
            # Every value identical: one degenerate range.
            self.boundaries = np.array([quantiles[0], quantiles[0]])
            self.bins = 1

    def assign(self, values) -> np.ndarray:
        """Range index of each value (values outside clamp to the ends)."""
        values = np.asarray(values, dtype=np.float64)
        ranges = np.searchsorted(self.boundaries[1:-1], values, side="right")
        return ranges.astype(np.int64)

    def width(self, range_index: int) -> float:
        """Span of one range (used by the IGrid proximity score)."""
        if not 0 <= range_index < self.bins:
            raise ValidationError(
                f"range {range_index} out of range [0, {self.bins})"
            )
        lo = self.boundaries[range_index]
        hi = self.boundaries[range_index + 1]
        return float(hi - lo)
