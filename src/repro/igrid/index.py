"""The IGrid inverted index.

"IGrid was proposed as an inverted file on the grid partition of the
database" (Sec. 5.2.3).  For every (dimension, range) pair the index
stores the inverted list of ``(point id, attribute value)`` entries of
the points falling into that range.

Layout matters here.  The paper's efficiency argument against IGrid is
not the data volume — [6]'s own analysis puts it at ``2/d`` of the
database — but the placement: "the accessed data are fragmented and
distributed all over the data set.  Random accesses of all the fragments
are much more expensive than when they are clustered together and
accessed sequentially."  We reproduce that honestly by building the
inverted file the way a dynamic loader does: points are inserted in id
order, each insertion appends one entry to ``d`` different lists, and a
list gets a fresh page from the shared pool whenever its current page
fills.  With ``d * bins`` lists filling concurrently, consecutive pages
of one list end up far apart, so reading a list at query time is a chain
of seeks — exactly the effect in Figs. 13-15.

The page-fill schedule is computed vectorised (a list's p-th page is
allocated when its ``p * entries_per_page``-th entry arrives, and entry
arrival order is global point-id-major order), so builds stay fast at
100k+ points.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core import validation
from ..errors import ValidationError
from ..storage import DEFAULT_DISK_MODEL, DiskModel, Pager
from .partition import EquiDepthPartition, default_bin_count

__all__ = ["IGridIndex"]

#: bytes of one inverted entry: 4-byte point id + 4-byte attribute value
ENTRY_BYTES = 8


class IGridIndex:
    """Equi-depth inverted grid over a ``(c, d)`` point set."""

    def __init__(
        self,
        data,
        bins: Optional[int] = None,
        pager: Optional[Pager] = None,
        disk_model: DiskModel = DEFAULT_DISK_MODEL,
    ) -> None:
        array = validation.as_database_array(data)
        c, d = array.shape
        self.disk_model = disk_model
        self._pager = pager if pager is not None else Pager(disk_model.page_size)
        self.bins = bins if bins is not None else default_bin_count(d)
        if self.bins < 1:
            raise ValidationError(f"bins must be >= 1; got {self.bins}")
        self._cardinality = c
        self._dimensionality = d
        self.entries_per_page = self._pager.page_size // ENTRY_BYTES

        self.partitions: List[EquiDepthPartition] = []
        members: List[List[np.ndarray]] = []  # [dim][range] -> point ids
        allocation_times: List[int] = []
        owners: List[Tuple[int, int, int]] = []  # (dim, range, page ordinal)
        for j in range(d):
            partition = EquiDepthPartition(array[:, j], self.bins)
            self.partitions.append(partition)
            assignment = partition.assign(array[:, j])
            lists_here: List[np.ndarray] = []
            for r in range(partition.bins):
                pids = np.flatnonzero(assignment == r)
                lists_here.append(pids)
                # The p-th page of this list is allocated when the list's
                # (p * entries_per_page)-th entry arrives; entry (pid, j)
                # arrives at global time pid * d + j.
                firsts = pids[:: self.entries_per_page]
                for ordinal, pid in enumerate(firsts):
                    allocation_times.append(int(pid) * d + j)
                    owners.append((j, r, ordinal))
            members.append(lists_here)

        # Assign page ids in allocation-time order from the shared pool.
        order = np.argsort(np.asarray(allocation_times), kind="stable")
        base = self._pager.page_count
        for _ in range(len(owners)):
            self._pager.allocate()
        # _pages[j][r] -> array of page ids of that list, in list order.
        self._pages: List[List[np.ndarray]] = [
            [
                np.empty(
                    -(-members[j][r].shape[0] // self.entries_per_page)
                    if members[j][r].shape[0]
                    else 0,
                    dtype=np.int64,
                )
                for r in range(self.partitions[j].bins)
            ]
            for j in range(d)
        ]
        for page_id, owner_index in enumerate(order):
            j, r, ordinal = owners[owner_index]
            self._pages[j][r][ordinal] = base + page_id

        # In-memory payloads for scoring (the pages carry the cost model).
        self._members = members
        self._values: List[List[np.ndarray]] = [
            [array[members[j][r], j].copy() for r in range(self.partitions[j].bins)]
            for j in range(d)
        ]

    # ------------------------------------------------------------------
    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    def list_pages(self, dimension: int, range_index: int) -> np.ndarray:
        """Page ids of one inverted list, in list order."""
        self._check(dimension, range_index)
        return self._pages[dimension][range_index]

    def inverted_list(
        self, dimension: int, range_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Read one inverted list, driving the page recorder.

        Returns ``(point ids, attribute values)``.  The list's pages are
        read in list order under the list's own stream; because the
        dynamic build scattered them across the pool, most transitions
        are seeks.
        """
        self._check(dimension, range_index)
        stream = f"igrid@{dimension}:{range_index}"
        for page_id in self._pages[dimension][range_index]:
            self._pager.read(int(page_id), stream)
        return (
            self._members[dimension][range_index],
            self._values[dimension][range_index],
        )

    def _check(self, dimension: int, range_index: int) -> None:
        if not 0 <= dimension < self._dimensionality:
            raise ValidationError(
                f"dimension {dimension} out of range [0, {self._dimensionality})"
            )
        if not 0 <= range_index < self.partitions[dimension].bins:
            raise ValidationError(
                f"range {range_index} out of range "
                f"[0, {self.partitions[dimension].bins})"
            )
