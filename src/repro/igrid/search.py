"""IGrid similarity search.

The IGrid similarity between a point ``P`` and the query ``Q`` aggregates
only the dimensions where both fall into the same equi-depth range (the
*proximity set* ``S(P, Q)``):

    PIDist(P, Q) = [ sum_{i in S(P,Q)} (1 - |p_i - q_i| / m_i)^p ]^(1/p)

where ``m_i`` is the width of the shared range — higher is more similar.
This is [6]'s static-discretisation counterpart of the k-n-match idea:
matches are counted per dimension, but the actual differences are still
aggregated, and the grid is fixed in advance rather than adapting to the
query/point pair (the contrast Sec. 6 draws).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core import validation
from ..core.types import SearchStats
from ..storage import DEFAULT_DISK_MODEL, DiskModel, Pager
from .index import IGridIndex

__all__ = ["IGridEngine", "IGridResult"]


@dataclass
class IGridResult:
    """Top-k answer of one IGrid similarity query (higher score first)."""

    ids: List[int]
    scores: List[float]
    k: int
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.scores))


class IGridEngine:
    """Similarity search over an :class:`IGridIndex`."""

    name = "igrid"

    def __init__(
        self,
        data,
        bins: Optional[int] = None,
        p: float = 1.0,
        pager: Optional[Pager] = None,
        disk_model: DiskModel = DEFAULT_DISK_MODEL,
    ) -> None:
        array = validation.as_database_array(data)
        if p <= 0:
            raise ValueError(f"p must be positive; got {p}")
        self.p = p
        self.disk_model = disk_model
        self._index = IGridIndex(
            array, bins=bins, pager=pager, disk_model=disk_model
        )

    @property
    def index(self) -> IGridIndex:
        return self._index

    @property
    def cardinality(self) -> int:
        return self._index.cardinality

    @property
    def dimensionality(self) -> int:
        return self._index.dimensionality

    # ------------------------------------------------------------------
    def top_k(self, query, k: int) -> IGridResult:
        """The k most similar points under the IGrid proximity score.

        Accesses exactly one inverted list per dimension — the range the
        query falls into — and aggregates proximity contributions for the
        points found there.  Points sharing no range with the query score
        zero and can only appear if fewer than ``k`` points share any.
        """
        c, d = self.cardinality, self.dimensionality
        k = validation.validate_k(k, c)
        query = validation.as_query_array(query, d)

        recorder = self._index.pager.recorder
        recorder.forget_streams()  # measure each query cold
        baseline = (recorder.sequential_reads, recorder.random_reads)
        scores = np.zeros(c, dtype=np.float64)
        entries = 0
        for j in range(d):
            partition = self._index.partitions[j]
            r = int(partition.assign(np.array([query[j]]))[0])
            width = partition.width(r)
            pids, values = self._index.inverted_list(j, r)
            entries += pids.shape[0]
            if width <= 0.0:
                # Degenerate range (massive ties): exact matches only.
                contribution = (values == query[j]).astype(np.float64)
            else:
                contribution = 1.0 - np.abs(values - query[j]) / width
                contribution = np.clip(contribution, 0.0, 1.0)
            scores[pids] += np.power(contribution, self.p)

        order = np.lexsort((np.arange(c), -scores))[:k]
        final_scores = np.power(scores[order], 1.0 / self.p)
        stats = SearchStats(
            total_attributes=c * d,
            inverted_list_entries=entries,
            # each inverted entry carries one attribute value
            attributes_retrieved=entries,
            sequential_page_reads=recorder.sequential_reads - baseline[0],
            random_page_reads=recorder.random_reads - baseline[1],
        )
        return IGridResult(
            ids=[int(i) for i in order],
            scores=[float(s) for s in final_scores],
            k=k,
            stats=stats,
        )

    def simulated_seconds(self, stats: SearchStats) -> float:
        """Response time of ``stats`` under this engine's disk model."""
        return self.disk_model.simulated_seconds(stats)
