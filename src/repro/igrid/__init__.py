"""IGrid competitor: equi-depth inverted grid similarity search [6]."""

from .index import IGridIndex
from .partition import EquiDepthPartition, default_bin_count
from .search import IGridEngine, IGridResult

__all__ = [
    "EquiDepthPartition",
    "default_bin_count",
    "IGridIndex",
    "IGridEngine",
    "IGridResult",
]
