"""Persistence: save and load match databases, flat or sharded.

A :class:`~repro.core.engine.MatchDatabase` is cheap to rebuild (one
argsort per dimension), but for the 100k-point workloads of the
benchmark suite — and for downstream users with larger data — saving the
sorted columns avoids the rebuild entirely.  The format is a single
``.npz`` (numpy's zipped archive): raw data, per-dimension sorted values
and id permutations, plus a small JSON header with the format version
and shape, so a stale or foreign file fails loudly instead of
deserialising garbage.

Sharded databases (:class:`~repro.shard.ShardedMatchDatabase`) use the
same container with their own magic: the full data array, the
``point -> shard`` assignment, and each non-empty shard's prebuilt
sorted columns.  :func:`load_any_database` sniffs the header and
dispatches, so callers (the CLI in particular) can open either kind
without knowing which they were handed.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Union

import numpy as np

from .core.engine import MatchDatabase
from .errors import StorageError
from .sorted_lists import SortedColumns

__all__ = [
    "save_database",
    "load_database",
    "save_sharded_database",
    "load_sharded_database",
    "load_any_database",
    "FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
]

FORMAT_VERSION = 1
_MAGIC = "repro-knmatch"
SHARDED_FORMAT_VERSION = 1
_SHARDED_MAGIC = "repro-knmatch-shards"


def save_database(db: MatchDatabase, path: Union[str, os.PathLike]) -> None:
    """Write a database (data + prebuilt sorted columns) to ``path``.

    The suffix ``.npz`` is appended by numpy if missing; the written
    file is self-describing via its header.
    """
    if not isinstance(db, MatchDatabase):
        raise StorageError("save_database expects a MatchDatabase")
    columns = db.columns
    header = json.dumps(
        {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "cardinality": db.cardinality,
            "dimensionality": db.dimensionality,
            "default_engine": db.default_engine,
        }
    )
    sorted_values = np.stack(
        [columns.column_values(j) for j in range(db.dimensionality)]
    )
    sorted_ids = np.stack(
        [columns.column_ids(j) for j in range(db.dimensionality)]
    )
    np.savez_compressed(
        path,
        header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        data=db.data,
        sorted_values=sorted_values,
        sorted_ids=sorted_ids,
    )


def load_database(path: Union[str, os.PathLike]) -> MatchDatabase:
    """Load a database written by :func:`save_database`.

    The stored sorted columns are verified against the stored data
    (shape and spot consistency) and installed without re-sorting.
    """
    try:
        archive = np.load(path)
    except (OSError, ValueError) as error:
        raise StorageError(f"cannot read database file {path!r}: {error}") from error
    try:
        required = {"header", "data", "sorted_values", "sorted_ids"}
        missing = required - set(archive.files)
        if missing:
            raise StorageError(
                f"{path!r} is not a repro database file (missing {sorted(missing)})"
            )
        header = _parse_header(archive, path)
        if header.get("magic") != _MAGIC:
            raise StorageError(f"{path!r} is not a repro database file")
        if header.get("version") != FORMAT_VERSION:
            raise StorageError(
                f"{path!r} uses format version {header.get('version')}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        data = archive["data"]
        c = header.get("cardinality")
        d = header.get("dimensionality")
        if data.shape != (c, d):
            raise StorageError(
                f"{path!r}: data shape {data.shape} does not match header ({c}, {d})"
            )
        columns = _columns_from_arrays(
            data, archive["sorted_values"], archive["sorted_ids"], path
        )
        return MatchDatabase.from_columns(
            columns, default_engine=header.get("default_engine", "ad")
        )
    finally:
        archive.close()


def _parse_header(archive, path) -> dict:
    """Decode the JSON header array of an ``.npz`` database file."""
    try:
        return json.loads(bytes(archive["header"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StorageError(f"{path!r} has a corrupt header") from error


def _columns_from_arrays(
    data: np.ndarray, sorted_values: np.ndarray, sorted_ids: np.ndarray, path
) -> SortedColumns:
    """Install stored sorted columns without re-sorting, after checks."""
    c, d = data.shape
    if sorted_values.shape != (d, c) or sorted_ids.shape != (d, c):
        raise StorageError(f"{path!r}: sorted-column shapes are inconsistent")
    columns = SortedColumns.from_prebuilt(
        np.ascontiguousarray(data, dtype=np.float64),
        np.ascontiguousarray(sorted_values, dtype=np.float64),
        np.ascontiguousarray(sorted_ids, dtype=np.int64),
    )
    _verify_columns(columns, path)
    return columns


def save_sharded_database(db, path: Union[str, os.PathLike]) -> None:
    """Write a sharded database (data + assignment + shard columns).

    Each non-empty shard's prebuilt sorted columns are stored under
    ``shard{i}_values`` / ``shard{i}_ids``, so loading skips every
    per-shard re-sort; empty shards are represented solely by their
    absence from the assignment.
    """
    from .shard import ShardedMatchDatabase

    if not isinstance(db, ShardedMatchDatabase):
        raise StorageError(
            "save_sharded_database expects a ShardedMatchDatabase"
        )
    header = json.dumps(
        {
            "magic": _SHARDED_MAGIC,
            "version": SHARDED_FORMAT_VERSION,
            "cardinality": db.cardinality,
            "dimensionality": db.dimensionality,
            "shards": db.shard_count,
            "partitioner": db.partitioner.describe(),
            "default_engine": db.default_engine,
        }
    )
    arrays = {
        "header": np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        "data": db.data,
        "assignment": db.assignment,
    }
    for index in range(db.shard_count):
        shard = db.shard(index)
        if shard is None:
            continue
        columns = shard.columns
        d = shard.dimensionality
        arrays[f"shard{index}_values"] = np.stack(
            [columns.column_values(j) for j in range(d)]
        )
        arrays[f"shard{index}_ids"] = np.stack(
            [columns.column_ids(j) for j in range(d)]
        )
    np.savez_compressed(path, **arrays)


def load_sharded_database(
    path: Union[str, os.PathLike],
    backend: str = "thread",
    workers: Optional[int] = None,
):
    """Load a sharded database written by :func:`save_sharded_database`.

    The stored assignment is reused verbatim (the partitioner is *not*
    re-run — its name in the header is informational), and each shard's
    stored sorted columns are verified against the shard's data slice
    exactly like the flat loader verifies a flat file.  ``backend`` and
    ``workers`` configure the scatter fan-out (see
    :class:`~repro.shard.ScatterGatherCoordinator`) — answers are
    identical for every setting.
    """
    from .shard import ShardedMatchDatabase
    from .shard.coordinator import ScatterGatherCoordinator
    from .shard.partition import Partitioner

    try:
        archive = np.load(path)
    except (OSError, ValueError) as error:
        raise StorageError(f"cannot read database file {path!r}: {error}") from error
    try:
        required = {"header", "data", "assignment"}
        missing = required - set(archive.files)
        if missing:
            raise StorageError(
                f"{path!r} is not a sharded repro database file "
                f"(missing {sorted(missing)})"
            )
        header = _parse_header(archive, path)
        if header.get("magic") != _SHARDED_MAGIC:
            raise StorageError(
                f"{path!r} is not a sharded repro database file"
            )
        if header.get("version") != SHARDED_FORMAT_VERSION:
            raise StorageError(
                f"{path!r} uses sharded format version "
                f"{header.get('version')}; this build reads version "
                f"{SHARDED_FORMAT_VERSION}"
            )
        data = archive["data"]
        c = header.get("cardinality")
        d = header.get("dimensionality")
        shards = header.get("shards")
        if not isinstance(shards, int) or shards < 1:
            raise StorageError(f"{path!r}: bad shard count {shards!r}")
        if data.shape != (c, d):
            raise StorageError(
                f"{path!r}: data shape {data.shape} does not match header ({c}, {d})"
            )
        data = np.ascontiguousarray(data, dtype=np.float64)
        assignment = np.asarray(archive["assignment"], dtype=np.int64)
        if assignment.shape != (c,):
            raise StorageError(
                f"{path!r}: assignment shape {assignment.shape} does not "
                f"match cardinality {c}"
            )
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= shards
        ):
            raise StorageError(
                f"{path!r}: assignment references shards outside "
                f"[0, {shards})"
            )
        default_engine = header.get("default_engine", "ad")

        global_ids = [np.flatnonzero(assignment == s) for s in range(shards)]
        shard_dbs = []
        for index, gids in enumerate(global_ids):
            if not gids.size:
                shard_dbs.append(None)
                continue
            values_key = f"shard{index}_values"
            ids_key = f"shard{index}_ids"
            if values_key not in archive.files or ids_key not in archive.files:
                raise StorageError(
                    f"{path!r}: missing sorted columns for shard {index}"
                )
            columns = _columns_from_arrays(
                np.ascontiguousarray(data[gids]),
                archive[values_key],
                archive[ids_key],
                path,
            )
            shard_dbs.append(
                MatchDatabase.from_columns(
                    columns, default_engine=default_engine
                )
            )

        # A stored file carries the materialised assignment, not the
        # strategy object; expose the recorded name through a stub so
        # `db.partitioner.describe()` keeps working.
        stub = Partitioner()
        stub.name = str(header.get("partitioner", "stored"))

        db = ShardedMatchDatabase.__new__(ShardedMatchDatabase)
        db._data = data
        db._assignment = assignment
        db._shard_count = int(shards)
        db._default_engine = default_engine
        db._metrics = None
        db._spans = None
        db._partitioner = stub
        db._global_ids = global_ids
        db._shard_dbs = shard_dbs
        db._coordinator = ScatterGatherCoordinator(
            [
                (s, shard, gids)
                for s, (shard, gids) in enumerate(zip(shard_dbs, global_ids))
                if shard is not None
            ],
            total_attributes=int(c) * int(d),
            workers=workers,
            backend=backend,
        )
        return db
    finally:
        archive.close()


def load_any_database(
    path: Union[str, os.PathLike],
    backend: str = "thread",
    workers: Optional[int] = None,
):
    """Open a database file of either kind, dispatching on its header.

    Returns a :class:`MatchDatabase` for flat files, a
    :class:`~repro.shard.ShardedMatchDatabase` for sharded ones, and a
    :class:`~repro.lsm.LsmMatchDatabase` for a *directory* holding an
    LSM store (its ``MANIFEST.json`` is the tell); raises
    :class:`StorageError` for anything else.  ``backend``/``workers``
    apply only to sharded files (flat databases have no fan-out).
    """
    if os.path.isdir(path):
        from .lsm import LsmMatchDatabase
        from .lsm.store import MANIFEST_NAME

        if not os.path.exists(os.path.join(os.fspath(path), MANIFEST_NAME)):
            raise StorageError(
                f"{os.fspath(path)!r} is a directory without a "
                f"{MANIFEST_NAME}; not an LSM store"
            )
        return LsmMatchDatabase.recover(path)
    try:
        archive = np.load(path)
    except (OSError, ValueError) as error:
        raise StorageError(f"cannot read database file {path!r}: {error}") from error
    try:
        if "header" not in archive.files:
            raise StorageError(f"{path!r} is not a repro database file")
        magic = _parse_header(archive, path).get("magic")
    finally:
        archive.close()
    if magic == _SHARDED_MAGIC:
        return load_sharded_database(path, backend=backend, workers=workers)
    if magic == _MAGIC:
        return load_database(path)
    raise StorageError(f"{path!r} is not a repro database file")


def _verify_columns(columns: SortedColumns, path) -> None:
    """Cheap integrity checks: sortedness and id/value alignment."""
    c, d = columns._cardinality, columns._dimensionality
    for j in range(d):
        values = columns._values[j]
        ids = columns._ids[j]
        if np.any(np.diff(values) < 0):
            raise StorageError(f"{path!r}: dimension {j} is not sorted")
        if ids.min() < 0 or ids.max() >= c:
            raise StorageError(f"{path!r}: dimension {j} has out-of-range ids")
        if np.any(np.bincount(ids, minlength=c) != 1):
            raise StorageError(
                f"{path!r}: dimension {j} ids are not a permutation"
            )
        # spot-check alignment on a handful of positions
        probes = np.linspace(0, c - 1, num=min(c, 8), dtype=np.int64)
        if not np.allclose(values[probes], columns._data[ids[probes], j]):
            raise StorageError(
                f"{path!r}: dimension {j} ids do not match the stored data"
            )
