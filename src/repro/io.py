"""Persistence: save and load match databases.

A :class:`~repro.core.engine.MatchDatabase` is cheap to rebuild (one
argsort per dimension), but for the 100k-point workloads of the
benchmark suite — and for downstream users with larger data — saving the
sorted columns avoids the rebuild entirely.  The format is a single
``.npz`` (numpy's zipped archive): raw data, per-dimension sorted values
and id permutations, plus a small JSON header with the format version
and shape, so a stale or foreign file fails loudly instead of
deserialising garbage.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from .core.engine import MatchDatabase
from .errors import StorageError
from .sorted_lists import SortedColumns

__all__ = ["save_database", "load_database", "FORMAT_VERSION"]

FORMAT_VERSION = 1
_MAGIC = "repro-knmatch"


def save_database(db: MatchDatabase, path: Union[str, os.PathLike]) -> None:
    """Write a database (data + prebuilt sorted columns) to ``path``.

    The suffix ``.npz`` is appended by numpy if missing; the written
    file is self-describing via its header.
    """
    if not isinstance(db, MatchDatabase):
        raise StorageError("save_database expects a MatchDatabase")
    columns = db.columns
    header = json.dumps(
        {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "cardinality": db.cardinality,
            "dimensionality": db.dimensionality,
            "default_engine": db.default_engine,
        }
    )
    sorted_values = np.stack(
        [columns.column_values(j) for j in range(db.dimensionality)]
    )
    sorted_ids = np.stack(
        [columns.column_ids(j) for j in range(db.dimensionality)]
    )
    np.savez_compressed(
        path,
        header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        data=db.data,
        sorted_values=sorted_values,
        sorted_ids=sorted_ids,
    )


def load_database(path: Union[str, os.PathLike]) -> MatchDatabase:
    """Load a database written by :func:`save_database`.

    The stored sorted columns are verified against the stored data
    (shape and spot consistency) and installed without re-sorting.
    """
    try:
        archive = np.load(path)
    except (OSError, ValueError) as error:
        raise StorageError(f"cannot read database file {path!r}: {error}") from error
    try:
        required = {"header", "data", "sorted_values", "sorted_ids"}
        missing = required - set(archive.files)
        if missing:
            raise StorageError(
                f"{path!r} is not a repro database file (missing {sorted(missing)})"
            )
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StorageError(f"{path!r} has a corrupt header") from error
        if header.get("magic") != _MAGIC:
            raise StorageError(f"{path!r} is not a repro database file")
        if header.get("version") != FORMAT_VERSION:
            raise StorageError(
                f"{path!r} uses format version {header.get('version')}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        data = archive["data"]
        sorted_values = archive["sorted_values"]
        sorted_ids = archive["sorted_ids"]
        c = header.get("cardinality")
        d = header.get("dimensionality")
        if data.shape != (c, d):
            raise StorageError(
                f"{path!r}: data shape {data.shape} does not match header ({c}, {d})"
            )
        if sorted_values.shape != (d, c) or sorted_ids.shape != (d, c):
            raise StorageError(f"{path!r}: sorted-column shapes are inconsistent")

        db = MatchDatabase.__new__(MatchDatabase)
        columns = SortedColumns.__new__(SortedColumns)
        columns._data = np.ascontiguousarray(data, dtype=np.float64)
        columns._values = np.ascontiguousarray(sorted_values, dtype=np.float64)
        columns._ids = np.ascontiguousarray(sorted_ids, dtype=np.int64)
        columns._cardinality = int(c)
        columns._dimensionality = int(d)
        _verify_columns(columns, path)
        db._columns = columns
        db._default_engine = header.get("default_engine", "ad")
        db._engines = {}
        db._metrics = None
        return db
    finally:
        archive.close()


def _verify_columns(columns: SortedColumns, path) -> None:
    """Cheap integrity checks: sortedness and id/value alignment."""
    c, d = columns._cardinality, columns._dimensionality
    for j in range(d):
        values = columns._values[j]
        ids = columns._ids[j]
        if np.any(np.diff(values) < 0):
            raise StorageError(f"{path!r}: dimension {j} is not sorted")
        if ids.min() < 0 or ids.max() >= c:
            raise StorageError(f"{path!r}: dimension {j} has out-of-range ids")
        if np.any(np.bincount(ids, minlength=c) != 1):
            raise StorageError(
                f"{path!r}: dimension {j} ids are not a permutation"
            )
        # spot-check alignment on a handful of positions
        probes = np.linspace(0, c - 1, num=min(c, 8), dtype=np.int64)
        if not np.allclose(values[probes], columns._data[ids[probes], j]):
            raise StorageError(
                f"{path!r}: dimension {j} ids do not match the stored data"
            )
