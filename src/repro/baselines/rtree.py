"""An R-tree with best-first kNN search — the index the paper dismisses.

Sec. 6: "Early methods are based on R-tree-like structures such as the
SS-tree and the X-tree.  However, the R-tree-like structures all suffer
from the dimensionality curse: their performance deteriorates
dramatically as dimensionality becomes high."  To make that argument
executable, this module implements a classic R-tree (quadratic-split
insertion, Guttman 1984) with the Hjaltason/Samet best-first nearest
neighbour search, instrumented with node-access counts.  The
``bench_rtree_curse`` benchmark then reproduces the curse: the fraction
of nodes a kNN query touches climbs towards 100% as dimensionality
grows, which is exactly why the paper's disk study compares against
scans, the VA-file and IGrid instead.

The tree indexes points (degenerate rectangles) and supports:

* :meth:`RTree.insert` / bulk construction from an array,
* :meth:`RTree.range_query` — axis-aligned window queries,
* :meth:`RTree.k_nearest` — exact kNN under Euclidean distance,
* node-access statistics for the curse measurements.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import validation
from ..errors import ValidationError

__all__ = ["RTree", "Rect"]


class Rect:
    """An axis-aligned minimum bounding rectangle."""

    __slots__ = ("low", "high")

    def __init__(self, low: np.ndarray, high: np.ndarray) -> None:
        self.low = low
        self.high = high

    @classmethod
    def point(cls, coords: np.ndarray) -> "Rect":
        return cls(coords.copy(), coords.copy())

    def copy(self) -> "Rect":
        return Rect(self.low.copy(), self.high.copy())

    def extend(self, other: "Rect") -> None:
        np.minimum(self.low, other.low, out=self.low)
        np.maximum(self.high, other.high, out=self.high)

    def extended(self, other: "Rect") -> "Rect":
        merged = self.copy()
        merged.extend(other)
        return merged

    def area(self) -> float:
        return float(np.prod(self.high - self.low))

    def enlargement(self, other: "Rect") -> float:
        return self.extended(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return bool(
            np.all(self.low <= other.high) and np.all(other.low <= self.high)
        )

    def contains_point(self, point: np.ndarray) -> bool:
        return bool(np.all(self.low <= point) and np.all(point <= self.high))

    def min_distance(self, point: np.ndarray) -> float:
        """Smallest Euclidean distance from ``point`` to this rectangle."""
        below = np.maximum(self.low - point, 0.0)
        above = np.maximum(point - self.high, 0.0)
        gap = np.maximum(below, above)
        return float(np.sqrt(np.sum(gap * gap)))


class _Node:
    __slots__ = ("leaf", "rect", "children", "entries")

    def __init__(self, leaf: bool, dimensionality: int) -> None:
        self.leaf = leaf
        self.rect = Rect(
            np.full(dimensionality, np.inf), np.full(dimensionality, -np.inf)
        )
        self.children: List["_Node"] = []
        self.entries: List[Tuple[int, np.ndarray]] = []

    def fanout(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)


class RTree:
    """Guttman R-tree over points, with quadratic node splits."""

    def __init__(self, dimensionality: int, max_entries: int = 32) -> None:
        if dimensionality < 1:
            raise ValidationError(
                f"dimensionality must be >= 1; got {dimensionality}"
            )
        if max_entries < 4:
            raise ValidationError(f"max_entries must be >= 4; got {max_entries}")
        self.dimensionality = dimensionality
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self._root = _Node(leaf=True, dimensionality=dimensionality)
        self._size = 0
        self._node_count = 1
        #: nodes touched by queries since the last reset
        self.node_accesses = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, data, max_entries: int = 32) -> "RTree":
        """Bulk-construct by repeated insertion (paper-era loading)."""
        array = validation.as_database_array(data)
        tree = cls(array.shape[1], max_entries=max_entries)
        for pid, row in enumerate(array):
            tree.insert(pid, row)
        return tree

    @property
    def size(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height

    def reset_counters(self) -> None:
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, pid: int, point) -> None:
        """Insert one point with its id."""
        coords = validation.as_query_array(point, self.dimensionality)
        rect = Rect.point(coords)
        split = self._insert(self._root, pid, coords, rect)
        if split is not None:
            old_root = self._root
            new_root = _Node(leaf=False, dimensionality=self.dimensionality)
            new_root.children = [old_root, split]
            new_root.rect = old_root.rect.extended(split.rect)
            self._root = new_root
            self._node_count += 1
        self._size += 1

    def _insert(
        self, node: _Node, pid: int, coords: np.ndarray, rect: Rect
    ) -> Optional[_Node]:
        node.rect.extend(rect)
        if node.leaf:
            node.entries.append((pid, coords))
            if len(node.entries) > self.max_entries:
                return self._split_leaf(node)
            return None
        child = self._choose_subtree(node, rect)
        split = self._insert(child, pid, coords, rect)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split_internal(node)
        return None

    def _choose_subtree(self, node: _Node, rect: Rect) -> _Node:
        """Least-enlargement child; ties by smaller area."""
        best = None
        best_key = None
        for child in node.children:
            key = (child.rect.enlargement(rect), child.rect.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    # quadratic split (Guttman): pick the pair wasting the most area as
    # seeds, then assign each remaining entry to the needier group.
    def _split_leaf(self, node: _Node) -> _Node:
        entries = node.entries
        rects = [Rect.point(coords) for _pid, coords in entries]
        group_a, group_b = self._quadratic_partition(rects)
        sibling = _Node(leaf=True, dimensionality=self.dimensionality)
        self._node_count += 1
        node_entries, sibling_entries = [], []
        for index, entry in enumerate(entries):
            (node_entries if index in group_a else sibling_entries).append(entry)
        node.entries = node_entries
        sibling.entries = sibling_entries
        self._recompute_rect(node)
        self._recompute_rect(sibling)
        return sibling

    def _split_internal(self, node: _Node) -> _Node:
        children = node.children
        rects = [child.rect for child in children]
        group_a, group_b = self._quadratic_partition(rects)
        sibling = _Node(leaf=False, dimensionality=self.dimensionality)
        self._node_count += 1
        node_children, sibling_children = [], []
        for index, child in enumerate(children):
            (node_children if index in group_a else sibling_children).append(child)
        node.children = node_children
        sibling.children = sibling_children
        self._recompute_rect(node)
        self._recompute_rect(sibling)
        return sibling

    def _quadratic_partition(self, rects: Sequence[Rect]) -> Tuple[set, set]:
        count = len(rects)
        worst_pair, worst_waste = (0, 1), -np.inf
        for i, j in itertools.combinations(range(count), 2):
            waste = rects[i].extended(rects[j]).area() - rects[i].area() - rects[j].area()
            if waste > worst_waste:
                worst_pair, worst_waste = (i, j), waste
        seed_a, seed_b = worst_pair
        group_a, group_b = {seed_a}, {seed_b}
        rect_a, rect_b = rects[seed_a].copy(), rects[seed_b].copy()
        remaining = [i for i in range(count) if i not in (seed_a, seed_b)]
        for index in remaining:
            # force-assign when one group must absorb the rest
            if len(group_a) + (count - len(group_a) - len(group_b)) <= self.min_entries:
                group_a.add(index)
                rect_a.extend(rects[index])
                continue
            if len(group_b) + (count - len(group_a) - len(group_b)) <= self.min_entries:
                group_b.add(index)
                rect_b.extend(rects[index])
                continue
            if rect_a.enlargement(rects[index]) <= rect_b.enlargement(rects[index]):
                group_a.add(index)
                rect_a.extend(rects[index])
            else:
                group_b.add(index)
                rect_b.extend(rects[index])
        return group_a, group_b

    def _recompute_rect(self, node: _Node) -> None:
        node.rect = Rect(
            np.full(self.dimensionality, np.inf),
            np.full(self.dimensionality, -np.inf),
        )
        if node.leaf:
            for _pid, coords in node.entries:
                node.rect.extend(Rect.point(coords))
        else:
            for child in node.children:
                node.rect.extend(child.rect)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(self, low, high) -> List[int]:
        """Point ids inside the axis-aligned window [low, high]."""
        low = validation.as_query_array(low, self.dimensionality)
        high = validation.as_query_array(high, self.dimensionality)
        if np.any(low > high):
            raise ValidationError("window requires low <= high per dimension")
        window = Rect(low, high)
        found: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.node_accesses += 1
            if node.leaf:
                for pid, coords in node.entries:
                    if window.contains_point(coords):
                        found.append(pid)
            else:
                stack.extend(
                    child for child in node.children
                    if child.rect.intersects(window)
                )
        return sorted(found)

    def k_nearest(self, query, k: int) -> List[Tuple[int, float]]:
        """Exact kNN via best-first traversal (Hjaltason & Samet)."""
        query = validation.as_query_array(query, self.dimensionality)
        if self._size == 0:
            raise ValidationError("cannot search an empty tree")
        k = validation.validate_k(k, self._size)
        counter = itertools.count()
        # heap of (distance, tiebreak, is_point, payload)
        heap: List[Tuple[float, int, bool, object]] = [
            (self._root.rect.min_distance(query), next(counter), False, self._root)
        ]
        results: List[Tuple[int, float]] = []
        while heap and len(results) < k:
            distance, _tie, is_point, payload = heapq.heappop(heap)
            if is_point:
                results.append((payload, distance))  # type: ignore[arg-type]
                continue
            node: _Node = payload  # type: ignore[assignment]
            self.node_accesses += 1
            if node.leaf:
                for pid, coords in node.entries:
                    point_distance = float(np.linalg.norm(coords - query))
                    heapq.heappush(
                        heap, (point_distance, next(counter), True, pid)
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (
                            child.rect.min_distance(query),
                            next(counter),
                            False,
                            child,
                        ),
                    )
        return results
