"""Block-nested-loop skyline computation.

Sec. 2.1 contrasts k-n-match with the skyline query: "the skyline query
returns {A, B, C} for the example in Figure 2, while the k-n-match query
returns k points depending on the query point and the k value".  We
implement the classic BNL skyline (Borzsonyi et al., ICDE 2001 — the
paper's [9]) so that contrast is executable, both on the paper's
five-point example and in the comparison example script.

Skylines here are *query-relative*: dominance is evaluated on the
absolute differences to a query point (smaller difference is better in
every dimension), which is the reading under which Fig. 2's example
answer {A, B, C} comes out.  Pass ``query=None`` for the classic
origin-anchored skyline (smaller raw coordinates are better).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core import validation

__all__ = ["skyline", "dominates"]


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` dominates ``b``: <= everywhere and < somewhere."""
    return bool(np.all(a <= b) and np.any(a < b))


def skyline(data, query: Optional[np.ndarray] = None) -> List[int]:
    """Ids of the skyline points of ``data`` (relative to ``query``).

    Block-nested-loop over an in-memory window: each point is compared
    against the current skyline candidates; dominated candidates drop
    out, and the point joins unless itself dominated.  Output ids are
    ascending.
    """
    array = validation.as_database_array(data)
    if query is not None:
        query = validation.as_query_array(query, array.shape[1])
        array = np.abs(array - query)

    window: List[int] = []
    for pid in range(array.shape[0]):
        candidate = array[pid]
        dominated = False
        survivors: List[int] = []
        for other in window:
            if dominates(array[other], candidate):
                dominated = True
                survivors = window  # keep window unchanged
                break
            if not dominates(candidate, array[other]):
                survivors.append(other)
        window = survivors
        if not dominated:
            window.append(pid)
    return sorted(window)
