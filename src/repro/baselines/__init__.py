"""Baselines and comparators: kNN, skyline, Fagin's FA, DPF."""

from .dpf import DPFEngine, DPFResult
from .fagin import FARun, fa_top_k, ta_top_k
from .knn import KnnEngine, KnnResult
from .rtree import Rect, RTree
from .skyline import dominates, skyline
from .sstree import SSTree

__all__ = [
    "KnnEngine",
    "KnnResult",
    "DPFEngine",
    "DPFResult",
    "fa_top_k",
    "ta_top_k",
    "FARun",
    "skyline",
    "dominates",
    "RTree",
    "Rect",
    "SSTree",
]
