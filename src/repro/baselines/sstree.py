"""An SS-tree: the similarity index of White & Jain (ICDE 1996, [22]).

The second member of the paper's "R-tree-like structures" (Sec. 6): the
SS-tree bounds each subtree with a *sphere* (centroid + radius) instead
of a rectangle, which suits similarity search — the bound shape matches
the query shape — yet it collapses under the same dimensionality curse:
in high dimensions the spheres overlap massively and a kNN query visits
nearly every node.

The implementation mirrors :class:`~repro.baselines.rtree.RTree`'s
interface (insert, bulk build, exact best-first kNN, node-access
accounting) so both trees drop into the same curse benchmark.  Splits
follow the original recipe: split along the dimension with the highest
coordinate variance, at the median.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from ..core import validation
from ..errors import ValidationError

__all__ = ["SSTree"]


class _Sphere:
    __slots__ = ("center", "radius")

    def __init__(self, center: np.ndarray, radius: float) -> None:
        self.center = center
        self.radius = radius

    def min_distance(self, point: np.ndarray) -> float:
        return max(0.0, float(np.linalg.norm(self.center - point)) - self.radius)


class _Node:
    __slots__ = ("leaf", "sphere", "children", "entries")

    def __init__(self, leaf: bool, dimensionality: int) -> None:
        self.leaf = leaf
        self.sphere = _Sphere(np.zeros(dimensionality), 0.0)
        self.children: List["_Node"] = []
        self.entries: List[Tuple[int, np.ndarray]] = []

    def fanout(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)

    def points(self) -> np.ndarray:
        """All point coordinates under this node (leaf only)."""
        return np.asarray([coords for _pid, coords in self.entries])

    def refresh_sphere(self) -> None:
        if self.leaf:
            coords = self.points()
            center = coords.mean(axis=0)
            radius = float(np.max(np.linalg.norm(coords - center, axis=1)))
        else:
            centers = np.asarray([child.sphere.center for child in self.children])
            center = centers.mean(axis=0)
            radius = max(
                float(np.linalg.norm(child.sphere.center - center))
                + child.sphere.radius
                for child in self.children
            )
        self.sphere = _Sphere(center, radius)


class SSTree:
    """Similarity search tree with bounding spheres."""

    def __init__(self, dimensionality: int, max_entries: int = 32) -> None:
        if dimensionality < 1:
            raise ValidationError(
                f"dimensionality must be >= 1; got {dimensionality}"
            )
        if max_entries < 4:
            raise ValidationError(f"max_entries must be >= 4; got {max_entries}")
        self.dimensionality = dimensionality
        self.max_entries = max_entries
        self._root = _Node(leaf=True, dimensionality=dimensionality)
        self._size = 0
        self._node_count = 1
        self.node_accesses = 0

    @classmethod
    def build(cls, data, max_entries: int = 32) -> "SSTree":
        array = validation.as_database_array(data)
        tree = cls(array.shape[1], max_entries=max_entries)
        for pid, row in enumerate(array):
            tree.insert(pid, row)
        return tree

    @property
    def size(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        return self._node_count

    def reset_counters(self) -> None:
        self.node_accesses = 0

    # ------------------------------------------------------------------
    def insert(self, pid: int, point) -> None:
        coords = validation.as_query_array(point, self.dimensionality)
        split = self._insert(self._root, pid, coords)
        if split is not None:
            old_root = self._root
            new_root = _Node(leaf=False, dimensionality=self.dimensionality)
            new_root.children = [old_root, split]
            new_root.refresh_sphere()
            self._root = new_root
            self._node_count += 1
        self._size += 1

    def _insert(self, node: _Node, pid: int, coords: np.ndarray) -> Optional[_Node]:
        if node.leaf:
            node.entries.append((pid, coords))
            node.refresh_sphere()
            if len(node.entries) > self.max_entries:
                return self._split(node)
            return None
        # SS-tree subtree choice: nearest centroid.
        child = min(
            node.children,
            key=lambda candidate: float(
                np.linalg.norm(candidate.sphere.center - coords)
            ),
        )
        split = self._insert(child, pid, coords)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                node.refresh_sphere()
                return self._split(node)
        node.refresh_sphere()
        return None

    def _split(self, node: _Node) -> _Node:
        """Split on the highest-variance coordinate, at the median."""
        if node.leaf:
            coords = node.points()
        else:
            coords = np.asarray([child.sphere.center for child in node.children])
        dimension = int(np.argmax(coords.var(axis=0)))
        order = np.argsort(coords[:, dimension], kind="stable")
        half = len(order) // 2
        keep, move = set(order[:half].tolist()), set(order[half:].tolist())

        sibling = _Node(leaf=node.leaf, dimensionality=self.dimensionality)
        self._node_count += 1
        if node.leaf:
            entries = node.entries
            node.entries = [entries[i] for i in sorted(keep)]
            sibling.entries = [entries[i] for i in sorted(move)]
        else:
            children = node.children
            node.children = [children[i] for i in sorted(keep)]
            sibling.children = [children[i] for i in sorted(move)]
        node.refresh_sphere()
        sibling.refresh_sphere()
        return sibling

    # ------------------------------------------------------------------
    def k_nearest(self, query, k: int) -> List[Tuple[int, float]]:
        """Exact kNN via best-first traversal over sphere bounds."""
        query = validation.as_query_array(query, self.dimensionality)
        if self._size == 0:
            raise ValidationError("cannot search an empty tree")
        k = validation.validate_k(k, self._size)
        counter = itertools.count()
        heap: List[Tuple[float, int, bool, object]] = [
            (self._root.sphere.min_distance(query), next(counter), False, self._root)
        ]
        results: List[Tuple[int, float]] = []
        while heap and len(results) < k:
            distance, _tie, is_point, payload = heapq.heappop(heap)
            if is_point:
                results.append((payload, distance))  # type: ignore[arg-type]
                continue
            node: _Node = payload  # type: ignore[assignment]
            self.node_accesses += 1
            if node.leaf:
                for pid, coords in node.entries:
                    heapq.heappush(
                        heap,
                        (
                            float(np.linalg.norm(coords - query)),
                            next(counter),
                            True,
                            pid,
                        ),
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (
                            child.sphere.min_distance(query),
                            next(counter),
                            False,
                            child,
                        ),
                    )
        return results
