"""Exact k-nearest-neighbour search under Minkowski distances.

The strawman the paper argues against: similarity as distance "over a
fixed set of features", where "the distance is often affected by a few
dimensions with high dissimilarity" (Fig. 1's object 4 winning a
Euclidean NN search it plainly should not).  Used by the effectiveness
experiments (Tables 2-4) as the reference technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core import validation
from ..core.types import SearchStats

__all__ = ["KnnEngine", "KnnResult"]


@dataclass
class KnnResult:
    """Top-k nearest neighbours, ascending distance."""

    ids: List[int]
    distances: List[float]
    k: int
    p: float
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.distances))


class KnnEngine:
    """Exact scan kNN over an in-memory point set."""

    name = "knn"

    def __init__(self, data, p: float = 2.0) -> None:
        self._data = validation.as_database_array(data)
        if not (p > 0 or np.isinf(p)):
            raise ValueError(f"p must be positive or inf; got {p}")
        self.p = float(p)

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def cardinality(self) -> int:
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._data.shape[1]

    def top_k(self, query, k: int) -> KnnResult:
        """The k points with smallest Lp distance to ``query``.

        Ties break by ascending id, mirroring the naive k-n-match oracle.
        """
        c, d = self._data.shape
        k = validation.validate_k(k, c)
        query = validation.as_query_array(query, d)

        deltas = np.abs(self._data - query)
        if np.isinf(self.p):
            distances = deltas.max(axis=1)
        else:
            distances = np.power(np.power(deltas, self.p).sum(axis=1), 1.0 / self.p)
        order = np.lexsort((np.arange(c), distances))[:k]
        stats = SearchStats(
            attributes_retrieved=c * d,
            total_attributes=c * d,
            points_scanned=c,
        )
        return KnnResult(
            ids=[int(i) for i in order],
            distances=[float(distances[i]) for i in order],
            k=k,
            p=self.p,
            stats=stats,
        )
