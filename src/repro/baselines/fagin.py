"""Fagin's FA algorithm — and why it cannot answer k-n-match.

Sec. 3 of the paper: "the algorithm proposed in [11] for aggregating
scores from multiple systems, called FA, does not apply to our problem.
They require the aggregation function to be monotone, but the aggregation
function used in k-n-match (that is, n-match difference) is not
monotone."  The paper demonstrates the failure on Fig. 3's database.

This module implements classic FA over ascending sorted lists for
*minimisation* of a monotone aggregate:

* **Phase 1** — sorted access, one row at a time in parallel across all
  ``d`` lists, until ``k`` objects have been seen in *every* list.
* **Phase 2** — random access for every object seen in *any* list;
  compute the aggregate exactly; return the k best.

For an aggregate ``f`` that is monotone non-decreasing in every attribute
distance/score this is correct (Fagin 1996).  Feeding it the n-match
difference instead reproduces the paper's counterexample: on Fig. 3's
data, looking for the 1-match of ``(3.0, 7.0, 4.0)``, FA returns point 1
(1-match difference 2.6) while the true answer, point 2 (0.2), is never
even seen — see :func:`repro.baselines.fagin.fa_top_k` used in
``tests/test_paper_examples.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple

import numpy as np

from ..core import validation
from ..errors import ValidationError

__all__ = ["fa_top_k", "ta_top_k", "FARun"]


class FARun:
    """Outcome of one FA execution, with its access accounting."""

    def __init__(
        self,
        ids: List[int],
        aggregates: List[float],
        sorted_accesses: int,
        random_accesses: int,
        seen: Set[int],
    ) -> None:
        self.ids = ids
        self.aggregates = aggregates
        self.sorted_accesses = sorted_accesses
        self.random_accesses = random_accesses
        self.seen = seen

    def __iter__(self):
        return iter(zip(self.ids, self.aggregates))


def fa_top_k(
    data,
    aggregate: Callable[[np.ndarray], float],
    k: int,
    key: Callable[[np.ndarray], np.ndarray] = None,
) -> FARun:
    """Run FA to minimise ``aggregate`` over the rows of ``data``.

    Parameters
    ----------
    data:
        The ``(c, d)`` matrix whose columns play the role of the ``d``
        systems.  Each column is sorted ascending by ``key`` (identity by
        default) for the sorted-access phase.
    aggregate:
        Maps one row (after ``key``) to the score being minimised.
        Correctness is only guaranteed when this is monotone
        non-decreasing in each component; passing the n-match difference
        violates that and demonstrably breaks FA.
    k:
        Number of answers.
    key:
        Optional per-row transform applied before sorting and
        aggregation (e.g. ``lambda row: np.abs(row - query)`` to rank by
        differences rather than raw values — what FA *would* need to be
        correct for match queries, but cannot have, because the lists are
        pre-sorted by raw attribute value).
    """
    array = validation.as_database_array(data)
    c, d = array.shape
    k = validation.validate_k(k, c)
    transformed = array if key is None else np.apply_along_axis(key, 1, array)
    if transformed.shape != array.shape:
        raise ValidationError("key must preserve the row shape")

    # Sorted lists: column-wise ascending by raw attribute value —
    # the physical organisation FA receives from each system.
    orders = [np.argsort(array[:, j], kind="stable") for j in range(d)]

    seen_counts: Dict[int, int] = {}
    seen_any: Set[int] = set()
    complete = 0
    sorted_accesses = 0
    depth = 0
    while complete < k and depth < c:
        for j in range(d):
            pid = int(orders[j][depth])
            sorted_accesses += 1
            seen_any.add(pid)
            seen_counts[pid] = seen_counts.get(pid, 0) + 1
            if seen_counts[pid] == d:
                complete += 1
        depth += 1

    # Phase 2: random access for everything seen anywhere.
    random_accesses = 0
    scored: List[Tuple[float, int]] = []
    for pid in sorted(seen_any):
        random_accesses += d - seen_counts.get(pid, 0)
        scored.append((float(aggregate(transformed[pid])), pid))
    scored.sort()
    top = scored[:k]
    return FARun(
        ids=[pid for _score, pid in top],
        aggregates=[score for score, _pid in top],
        sorted_accesses=sorted_accesses,
        random_accesses=random_accesses,
        seen=seen_any,
    )


def ta_top_k(
    data,
    aggregate: Callable[[np.ndarray], float],
    k: int,
) -> FARun:
    """Fagin's Threshold Algorithm (TA, [13]) minimising ``aggregate``.

    Sorted access proceeds one row at a time across all lists (columns
    sorted ascending by raw value); every newly seen object is random-
    accessed and scored immediately; the run stops as soon as the k-th
    best score is at most the *threshold* — the aggregate of the last
    value seen under sorted access in each list, a lower bound on every
    unseen object's score **provided the aggregate is monotone
    non-decreasing** in each attribute.

    Like FA, feeding TA the n-match difference breaks that premise: the
    lists are ordered by raw attribute value while the score depends on
    differences to a query, so the threshold is not a valid bound and TA
    can stop before ever seeing the true answer (demonstrated in the
    test suite on the paper's Fig.-3 example).
    """
    array = validation.as_database_array(data)
    c, d = array.shape
    k = validation.validate_k(k, c)

    orders = [np.argsort(array[:, j], kind="stable") for j in range(d)]
    seen: Set[int] = set()
    scored: List[Tuple[float, int]] = []
    sorted_accesses = 0
    random_accesses = 0
    last_values = np.full(d, -np.inf)
    for depth in range(c):
        for j in range(d):
            pid = int(orders[j][depth])
            sorted_accesses += 1
            last_values[j] = array[pid, j]
            if pid not in seen:
                seen.add(pid)
                random_accesses += d - 1
                scored.append((float(aggregate(array[pid])), pid))
        scored.sort()
        if len(scored) >= k:
            threshold = float(aggregate(last_values))
            if scored[k - 1][0] <= threshold:
                break
    top = scored[:k]
    return FARun(
        ids=[pid for _score, pid in top],
        aggregates=[score for score, _pid in top],
        sorted_accesses=sorted_accesses,
        random_accesses=random_accesses,
        seen=seen,
    )
