"""Dynamic Partial Function (DPF) search — related work [18].

Goh, Li and Chang's DPF (ACM Multimedia 2002) computes similarity from
the closest ``n`` dimensions, like the n-match difference, but
*aggregates* those n differences with an Lp norm instead of taking the
n-th order statistic, and picks ``n`` ad hoc from data observation.  The
paper cites it as the closest prior strategy; implementing it lets the
ablation benchmarks compare order-statistic matching against partial
aggregation under identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core import validation
from ..core.distance import dpf_distances
from ..core.types import SearchStats

__all__ = ["DPFEngine", "DPFResult"]


@dataclass
class DPFResult:
    """Top-k answer under the dynamic partial function."""

    ids: List[int]
    distances: List[float]
    k: int
    n: int
    p: float
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.distances))


class DPFEngine:
    """Scan search minimising the DPF over the closest n dimensions."""

    name = "dpf"

    def __init__(self, data, p: float = 2.0) -> None:
        self._data = validation.as_database_array(data)
        if p <= 0:
            raise ValueError(f"p must be positive; got {p}")
        self.p = float(p)

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def cardinality(self) -> int:
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._data.shape[1]

    def top_k(self, query, k: int, n: int) -> DPFResult:
        """The k points with smallest DPF distance to ``query``."""
        c, d = self._data.shape
        k = validation.validate_k(k, c)
        n = validation.validate_n(n, d)
        query = validation.as_query_array(query, d)

        distances = dpf_distances(self._data, query, n, self.p)
        order = np.lexsort((np.arange(c), distances))[:k]
        stats = SearchStats(
            attributes_retrieved=c * d,
            total_attributes=c * d,
            points_scanned=c,
        )
        return DPFResult(
            ids=[int(i) for i in order],
            distances=[float(distances[i]) for i in order],
            k=k,
            n=n,
            p=self.p,
            stats=stats,
        )
