"""Bidirectional cursors over one sorted dimension.

The AD algorithm walks away from the query's position in each sorted
dimension in both directions (Fig. 4, line 4): "the direction towards
smaller values of dimension i corresponds to g[2(i-1)] while the direction
towards larger values corresponds to g[2i-1]".  A :class:`DirectionCursor`
is one of those two walks; :func:`make_cursors` builds the full set of
``2d`` cursors for a query.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .columns import SortedColumns

__all__ = ["DirectionCursor", "make_cursors"]

#: Direction constants: DOWN walks towards smaller attribute values,
#: UP towards larger ones.
DOWN = -1
UP = +1


class DirectionCursor:
    """One-directional walk over a sorted dimension.

    Yields ``(point id, |attribute - q|)`` pairs in ascending difference
    order *within this dimension and direction*.  The global ascending
    order across all cursors is produced by the frontier heap
    (:mod:`repro.sorted_lists.heap`).
    """

    __slots__ = ("dimension", "direction", "_values", "_ids", "_position", "_q", "retrieved")

    def __init__(
        self,
        columns: SortedColumns,
        dimension: int,
        direction: int,
        start_position: int,
        query_value: float,
    ) -> None:
        if direction not in (DOWN, UP):
            raise ValueError(f"direction must be DOWN(-1) or UP(+1); got {direction}")
        self.dimension = dimension
        self.direction = direction
        self._values = columns.column_values(dimension)
        self._ids = columns.column_ids(dimension)
        self._position = start_position
        self._q = query_value
        #: attributes this cursor has handed out so far
        self.retrieved = 0

    @property
    def exhausted(self) -> bool:
        """True when the cursor has walked off its end of the dimension."""
        if self.direction is DOWN or self.direction == DOWN:
            return self._position < 0
        return self._position >= self._values.shape[0]

    def peek(self) -> Optional[Tuple[int, float]]:
        """The next ``(point id, difference)`` pair without consuming it."""
        if self.exhausted:
            return None
        pid = int(self._ids[self._position])
        dif = abs(float(self._values[self._position]) - self._q)
        return pid, dif

    def next(self) -> Optional[Tuple[int, float]]:
        """Consume and return the next pair, or ``None`` if exhausted.

        Every successful call is one *attribute retrieval* in the paper's
        cost model; the caller tallies :attr:`retrieved` into its
        :class:`~repro.core.types.SearchStats`.
        """
        pair = self.peek()
        if pair is None:
            return None
        self._position += self.direction
        self.retrieved += 1
        return pair


def make_cursors(columns: SortedColumns, query: np.ndarray) -> List[DirectionCursor]:
    """Build the ``2d`` cursors for ``query`` (Fig. 4, lines 2-4).

    Slot ``2*j`` walks dimension ``j`` downwards (attributes strictly
    smaller than ``q_j``); slot ``2*j + 1`` walks upwards (attributes
    greater than or equal to ``q_j``).  The split point comes from a
    binary search in each sorted dimension, so each attribute of the
    dimension is covered by exactly one of the two cursors — no attribute
    is ever retrieved, and hence counted, twice.
    """
    cursors: List[DirectionCursor] = []
    for j in range(columns.dimensionality):
        q_j = float(query[j])
        split = columns.locate(j, q_j)
        cursors.append(DirectionCursor(columns, j, DOWN, split - 1, q_j))
        cursors.append(DirectionCursor(columns, j, UP, split, q_j))
    return cursors
