"""The ``g[]`` frontier of the AD algorithm.

Fig. 4 of the paper maintains an array ``g[]`` of ``2d`` triples
``(pid, pd, dif)`` — the next attribute to access in each dimension and
direction — and repeatedly pops the triple with the smallest ``dif``
(function ``smallest(g)``).  With ``2d`` entries a linear scan would do;
we use a binary heap so the structure also scales to the
multiple-system middleware case where ``d`` can be large.

Ties on ``dif`` are broken by slot index (dimension-major, down before
up), which makes the global pop order — and therefore every engine output
— fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .cursor import DirectionCursor

__all__ = ["AscendingDifferenceFrontier"]


class AscendingDifferenceFrontier:
    """Pops ``(difference, slot, point id)`` in globally ascending order.

    Wraps the ``2d`` direction cursors; after each pop the source cursor
    is advanced and its next attribute (if any) re-inserted, exactly as
    Fig. 4 line 11 ("read next attribute from dimension pd ... put the
    triple to g[pd]"; an exhausted direction simply stops contributing,
    which is equivalent to the paper's ``dif = infinity``).
    """

    def __init__(self, cursors: List[DirectionCursor]) -> None:
        self._cursors = cursors
        self._heap: List[Tuple[float, int, int]] = []
        self.pops = 0
        for slot, cursor in enumerate(cursors):
            pair = cursor.next()
            if pair is not None:
                pid, dif = pair
                self._heap.append((dif, slot, pid))
        heapq.heapify(self._heap)

    @property
    def attributes_retrieved(self) -> int:
        """Total attributes pulled from the sorted columns so far.

        Includes attributes currently sitting in the frontier that have
        not been popped yet: in the paper's access model they have already
        been read from the sorted lists.
        """
        return sum(cursor.retrieved for cursor in self._cursors)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_difference(self) -> Optional[float]:
        """Smallest difference currently in the frontier, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Tuple[int, int, float]]:
        """Pop the globally next attribute as ``(pid, slot, difference)``.

        Returns ``None`` once every cursor is exhausted, i.e. after all
        ``c * d`` attributes have been consumed.
        """
        if not self._heap:
            return None
        dif, slot, pid = heapq.heappop(self._heap)
        self.pops += 1
        refill = self._cursors[slot].next()
        if refill is not None:
            next_pid, next_dif = refill
            heapq.heappush(self._heap, (next_dif, slot, next_pid))
        return pid, slot, dif
