"""Sorted-column organisation of a multidimensional database.

The AD algorithm (Sec. 3 of the paper) assumes "attributes are sorted in
each dimension; each attribute is associated with its point ID", i.e. the
database is stored as ``d`` sorted lists of ``(attribute, point-id)``
pairs.  :class:`SortedColumns` builds and serves that organisation from an
in-memory array.  It is the substrate shared by the in-memory AD engine,
the block-AD engine and (serialised page-wise) the disk AD engine, and it
doubles as one "system" per dimension in the multiple-system information
retrieval model (:mod:`repro.ir`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core import validation
from ..errors import ValidationError

__all__ = ["SortedColumns"]


class SortedColumns:
    """Per-dimension sorted view of a ``(c, d)`` database.

    ``values[j]`` is dimension ``j`` sorted ascending and ``ids[j]`` the
    matching point ids (a permutation of ``0..c-1``).  Sorting is stable,
    so ties on the attribute value keep ascending id order — this keeps
    every engine built on top deterministic.
    """

    def __init__(self, data) -> None:
        array = validation.as_database_array(data)
        c, d = array.shape
        self._data = array
        # argsort each column; stable so equal values keep id order.
        order = np.argsort(array, axis=0, kind="stable")
        self._ids = np.ascontiguousarray(order.T)  # (d, c) int
        self._values = np.ascontiguousarray(
            np.take_along_axis(array, order, axis=0).T
        )  # (d, c) float64
        self._cardinality = c
        self._dimensionality = d

    @classmethod
    def from_prebuilt(
        cls, data: np.ndarray, values: np.ndarray, ids: np.ndarray
    ) -> "SortedColumns":
        """Install already-sorted columns without re-sorting.

        ``data`` is the row-major ``(c, d)`` array, ``values``/``ids``
        the ``(d, c)`` sorted-column matrices exactly as
        :attr:`values_matrix`/:attr:`ids_matrix` expose them.  The
        arrays are adopted as-is (no copy, no argsort) — this is the
        zero-copy path used by the persistence loader and by the
        shared-memory process workers, where the matrices are views
        over storage built (and verified) elsewhere.  Callers own the
        consistency of the three arrays.
        """
        c, d = data.shape
        if values.shape != (d, c) or ids.shape != (d, c):
            raise ValidationError(
                f"prebuilt column shapes {values.shape}/{ids.shape} do not "
                f"match data shape {data.shape}"
            )
        columns = cls.__new__(cls)
        columns._data = data
        columns._values = values
        columns._ids = ids
        columns._cardinality = int(c)
        columns._dimensionality = int(d)
        return columns

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The original row-major ``(c, d)`` array."""
        return self._data

    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    @property
    def total_attributes(self) -> int:
        return self._cardinality * self._dimensionality

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------
    def column_values(self, dimension: int) -> np.ndarray:
        """Sorted attribute values of one dimension (read-only view)."""
        self._check_dimension(dimension)
        return self._values[dimension]

    def column_ids(self, dimension: int) -> np.ndarray:
        """Point ids aligned with :meth:`column_values`."""
        self._check_dimension(dimension)
        return self._ids[dimension]

    @property
    def values_matrix(self) -> np.ndarray:
        """All sorted columns as one ``(d, c)`` array (row ``j`` = dim ``j``).

        A contiguous view over the build's internal storage, shared by the
        batch engines so a whole query batch can consume every column
        without per-dimension Python calls.  Treat it as read-only.
        """
        return self._values

    @property
    def ids_matrix(self) -> np.ndarray:
        """Point ids aligned row-wise with :attr:`values_matrix`."""
        return self._ids

    def entry(self, dimension: int, position: int) -> Tuple[int, float]:
        """The ``(point id, attribute)`` pair at one sorted position."""
        self._check_dimension(dimension)
        if not 0 <= position < self._cardinality:
            raise ValidationError(
                f"position {position} out of range [0, {self._cardinality})"
            )
        return (
            int(self._ids[dimension, position]),
            float(self._values[dimension, position]),
        )

    def locate(self, dimension: int, value: float) -> int:
        """Binary-search ``value`` in a sorted dimension (Fig. 4, line 3).

        Returns the position of the first attribute ``>= value`` (the
        ``np.searchsorted`` "left" convention).  Attributes strictly below
        the returned position are smaller than ``value``; the position
        itself and everything after are greater or equal.  The two AD
        cursors start from either side of this split.
        """
        self._check_dimension(dimension)
        return int(np.searchsorted(self._values[dimension], value, side="left"))

    def locate_all(self, query: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`locate` of ``query[j]`` in dimension ``j``."""
        query = validation.as_query_array(query, self._dimensionality)
        positions = np.empty(self._dimensionality, dtype=np.int64)
        for j in range(self._dimensionality):
            positions[j] = np.searchsorted(self._values[j], query[j], side="left")
        return positions

    def _check_dimension(self, dimension: int) -> None:
        if not 0 <= dimension < self._dimensionality:
            raise ValidationError(
                f"dimension {dimension} out of range [0, {self._dimensionality})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SortedColumns(cardinality={self._cardinality}, "
            f"dimensionality={self._dimensionality})"
        )
