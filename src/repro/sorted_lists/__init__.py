"""Sorted-dimension substrate: columns, cursors and the AD frontier."""

from .columns import SortedColumns
from .cursor import DOWN, UP, DirectionCursor, make_cursors
from .heap import AscendingDifferenceFrontier

__all__ = [
    "SortedColumns",
    "DirectionCursor",
    "make_cursors",
    "AscendingDifferenceFrontier",
    "DOWN",
    "UP",
]
