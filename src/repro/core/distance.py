"""Distance and matching functions.

The centrepiece is the **n-match difference** (Definition 1 of the paper):
for points ``P`` and ``Q`` in ``R^d``, sort the per-dimension absolute
differences ``|p_i - q_i|`` ascending; the n-th smallest is the n-match
difference.  Two properties the paper stresses — both demonstrable with the
helpers below — are that the n-match difference is

* **not a metric**: it violates the triangle inequality (Sec. 2.1's
  F/G/H example, exposed here as :data:`TRIANGLE_COUNTEREXAMPLE`), and
* **not a monotone aggregate**: Fagin's FA algorithm is therefore
  inapplicable (Sec. 3's Fig.-3 example, see :mod:`repro.baselines.fagin`).

Also provided: the classic Lp distances the paper compares against
(Euclidean for kNN, Chebyshev/L-infinity which n-match generalises *away*
from), and the Dynamic Partial Function of Goh et al. [18], which
aggregates the n smallest differences instead of selecting the n-th.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError

__all__ = [
    "pairwise_absolute_differences",
    "n_match_difference",
    "n_match_differences",
    "match_profile",
    "match_count_within",
    "minkowski_distance",
    "euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "dpf_distance",
    "dpf_distances",
    "TRIANGLE_COUNTEREXAMPLE",
]


def pairwise_absolute_differences(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Return ``|points - query|`` broadcast over the first axis.

    ``points`` may be a single point (1-D) or a stack of points (2-D);
    the result has the same shape as ``points``.
    """
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    return np.abs(points - query)


def n_match_difference(point, query, n: int) -> float:
    """The n-match difference between two points (Definition 1).

    Sort the absolute per-dimension differences ascending and return the
    n-th smallest (1-based).  ``n`` must be in ``[1, d]``.

    >>> n_match_difference([1.1, 100.0, 1.2], [1.0, 1.0, 1.0], 2)
    0.2
    """
    deltas = pairwise_absolute_differences(point, query)
    if deltas.ndim != 1:
        raise ValidationError("n_match_difference expects single points")
    d = deltas.shape[0]
    if not 1 <= n <= d:
        raise ValidationError(f"n must be within [1, {d}]; got {n}")
    # np.partition places the (n-1)-th order statistic at index n-1.
    return float(np.partition(deltas, n - 1)[n - 1])


def n_match_differences(points: np.ndarray, query: np.ndarray, n: int) -> np.ndarray:
    """Vectorised n-match difference of every row of ``points`` vs ``query``.

    This is the kernel of the naive scan engine: one
    ``np.partition`` over the difference matrix yields the n-th order
    statistic of every row at once.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValidationError("points must be a 2-D array")
    d = points.shape[1]
    if not 1 <= n <= d:
        raise ValidationError(f"n must be within [1, {d}]; got {n}")
    deltas = np.abs(points - np.asarray(query, dtype=np.float64))
    return np.partition(deltas, n - 1, axis=1)[:, n - 1]


def match_profile(point, query) -> np.ndarray:
    """All d order statistics: ``profile[n-1]`` is the n-match difference.

    The frequent k-n-match problem reasons over the whole profile, so the
    naive engine computes it once per point via a full sort.
    """
    deltas = pairwise_absolute_differences(point, query)
    if deltas.ndim != 1:
        raise ValidationError("match_profile expects single points")
    return np.sort(deltas)


def match_count_within(point, query, delta: float) -> int:
    """How many dimensions of ``point`` match ``query`` within ``delta``.

    This is the paper's intuitive reading of a match: ``p_i`` matches
    ``q_i`` iff ``|p_i - q_i| <= delta``.  A point is an n-match with
    threshold ``delta`` iff this count is at least ``n``.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative; got {delta}")
    deltas = pairwise_absolute_differences(point, query)
    return int(np.count_nonzero(deltas <= delta))


def minkowski_distance(point, query, p: float = 2.0) -> float:
    """Lp distance between two points; ``p=inf`` gives Chebyshev."""
    deltas = pairwise_absolute_differences(point, query)
    if np.isinf(p):
        return float(deltas.max())
    if p <= 0:
        raise ValidationError(f"p must be positive; got {p}")
    return float(np.power(np.power(deltas, p).sum(), 1.0 / p))


def euclidean_distance(point, query) -> float:
    """L2 distance — the similarity function of the paper's kNN strawman."""
    return minkowski_distance(point, query, 2.0)


def manhattan_distance(point, query) -> float:
    """L1 distance."""
    return minkowski_distance(point, query, 1.0)


def chebyshev_distance(point, query) -> float:
    """L-infinity distance.

    Note the paper's remark: the n-match difference is *not* a
    generalisation of Chebyshev — the d-match difference equals
    Chebyshev, but for ``n < d`` the selected dimension varies per pair
    and the triangle inequality breaks (:data:`TRIANGLE_COUNTEREXAMPLE`).
    """
    return minkowski_distance(point, query, np.inf)


def dpf_distance(point, query, n: int, p: float = 2.0) -> float:
    """Dynamic Partial Function of Goh et al. [18].

    Aggregates (Lp style) the ``n`` *smallest* per-dimension differences.
    Related work for the paper: DPF also uses the closest n dimensions but
    aggregates them, whereas the n-match difference only takes the n-th
    order statistic.
    """
    deltas = pairwise_absolute_differences(point, query)
    if deltas.ndim != 1:
        raise ValidationError("dpf_distance expects single points")
    d = deltas.shape[0]
    if not 1 <= n <= d:
        raise ValidationError(f"n must be within [1, {d}]; got {n}")
    if p <= 0:
        raise ValidationError(f"p must be positive; got {p}")
    smallest = np.partition(deltas, n - 1)[:n]
    return float(np.power(np.power(smallest, p).sum(), 1.0 / p))


def dpf_distances(points: np.ndarray, query: np.ndarray, n: int, p: float = 2.0) -> np.ndarray:
    """Vectorised :func:`dpf_distance` over the rows of ``points``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValidationError("points must be a 2-D array")
    d = points.shape[1]
    if not 1 <= n <= d:
        raise ValidationError(f"n must be within [1, {d}]; got {n}")
    if p <= 0:
        raise ValidationError(f"p must be positive; got {p}")
    deltas = np.abs(points - np.asarray(query, dtype=np.float64))
    smallest = np.partition(deltas, n - 1, axis=1)[:, :n]
    return np.power(np.power(smallest, p).sum(axis=1), 1.0 / p)


#: The paper's Sec.-2.1 demonstration that the 1-match difference violates
#: the triangle inequality: with F, G, H below, diff(F,G)=0, diff(F,H)=0,
#: diff(G,H)=0.4, and 0 + 0 < 0.4.
TRIANGLE_COUNTEREXAMPLE: Tuple[Tuple[float, ...], ...] = (
    (0.1, 0.5, 0.9),  # F
    (0.1, 0.1, 0.1),  # G
    (0.5, 0.5, 0.5),  # H
)
