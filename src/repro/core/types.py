"""Result and statistics types shared by every search engine.

Every engine in the library (naive scan, AD, block-AD, disk AD, VA-file,
IGrid, kNN...) returns one of the result dataclasses defined here, and each
result carries a :class:`SearchStats` describing the work the engine did.
The paper's central cost measure is *the number of individual attributes
retrieved* (Sec. 3); the disk chapters add page accesses (Sec. 4).  Both are
first-class fields here so that the optimality theorems (Thm 3.2/3.3) and
the efficiency figures (Figs. 9-15) can be checked directly from any result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SearchStats:
    """Work counters produced by one query execution.

    Attributes
    ----------
    attributes_retrieved:
        Number of individual (point-id, attribute) pairs consumed from the
        sorted columns.  This is the paper's cost measure for the multiple
        system information-retrieval model and the quantity the AD
        algorithm provably minimises.
    total_attributes:
        ``cardinality * dimensionality`` of the database queried, so that
        :attr:`fraction_retrieved` can be reported like Fig. 9(a)/15(b).
    heap_pops:
        Pops from the ``g[]`` frontier heap (AD engines only).
    binary_search_probes:
        Probes used to locate the query inside each sorted column.
    sequential_page_reads / random_page_reads:
        Page-level I/O split by access pattern (disk engines only).
    candidates_refined:
        Points fetched in a refinement phase (VA-file phase 2).
    approximation_entries_scanned:
        Approximation-file entries scanned (VA-file phase 1).
    inverted_list_entries:
        Inverted-list entries touched (IGrid).
    points_scanned:
        Full points examined by a scan engine.
    """

    attributes_retrieved: int = 0
    total_attributes: int = 0
    heap_pops: int = 0
    binary_search_probes: int = 0
    sequential_page_reads: int = 0
    random_page_reads: int = 0
    candidates_refined: int = 0
    approximation_entries_scanned: int = 0
    inverted_list_entries: int = 0
    points_scanned: int = 0

    @property
    def page_reads(self) -> int:
        """Total page accesses regardless of access pattern."""
        return self.sequential_page_reads + self.random_page_reads

    @property
    def fraction_retrieved(self) -> float:
        """Fraction of the database's attributes that were retrieved."""
        if self.total_attributes == 0:
            return 0.0
        return self.attributes_retrieved / self.total_attributes

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Return a new :class:`SearchStats` with component-wise sums.

        ``total_attributes`` is taken as the max rather than the sum: two
        phases of the same query run against the same database.
        """
        return SearchStats(
            attributes_retrieved=self.attributes_retrieved + other.attributes_retrieved,
            total_attributes=max(self.total_attributes, other.total_attributes),
            heap_pops=self.heap_pops + other.heap_pops,
            binary_search_probes=self.binary_search_probes + other.binary_search_probes,
            sequential_page_reads=self.sequential_page_reads + other.sequential_page_reads,
            random_page_reads=self.random_page_reads + other.random_page_reads,
            candidates_refined=self.candidates_refined + other.candidates_refined,
            approximation_entries_scanned=(
                self.approximation_entries_scanned + other.approximation_entries_scanned
            ),
            inverted_list_entries=self.inverted_list_entries + other.inverted_list_entries,
            points_scanned=self.points_scanned + other.points_scanned,
        )

    def __add__(self, other: "SearchStats") -> "SearchStats":
        """Alias of :meth:`merge` so stats roll up with ``+`` / ``sum``.

        Batch executors and evaluation harnesses aggregate many per-query
        :class:`SearchStats`; ``+`` keeps that a one-liner instead of
        ad-hoc per-field dict math.  Like :meth:`merge`,
        ``total_attributes`` is combined with ``max`` (the queries ran
        against the same database, so the denominator must not inflate).
        """
        if not isinstance(other, SearchStats):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other) -> "SearchStats":
        # Support ``sum(stats_list)`` which starts from the int 0.
        if other == 0:
            return self
        return NotImplemented

    @classmethod
    def aggregate(cls, stats: "Sequence[SearchStats]") -> "SearchStats":
        """Component-wise sum of many stats (empty input -> all zeros)."""
        total = cls()
        for item in stats:
            total = total.merge(item)
        return total


@dataclass
class MatchResult:
    """Answer to one k-n-match query (Definition 3 of the paper).

    ``ids[i]`` is the point id of the i-th answer and ``differences[i]``
    its n-match difference w.r.t. the query.  Answers are sorted by
    ascending n-match difference (ties broken by the engine's discovery
    order, which for AD is the provably-correct ascending-difference
    order).
    """

    ids: List[int]
    differences: List[float]
    k: int
    n: int
    stats: SearchStats = field(default_factory=SearchStats)
    #: optional per-query cost trace (:class:`repro.obs.QueryTrace`),
    #: attached by :class:`~repro.core.engine.MatchDatabase` when the
    #: caller passes ``trace=True``; ``None`` otherwise.
    trace: Optional[object] = None

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.differences):
            raise ValueError(
                "ids and differences must have equal length "
                f"({len(self.ids)} != {len(self.differences)})"
            )

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.differences))

    @property
    def match_difference(self) -> float:
        """The k-n-match difference: the largest returned difference.

        This is the adaptive threshold ``delta`` of Sec. 1 — a data point
        matches the query in a dimension iff their difference there is
        within this value.
        """
        if not self.differences:
            return float("nan")
        return max(self.differences)


@dataclass
class FrequentMatchResult:
    """Answer to one frequent k-n-match query (Definition 4).

    ``ids`` holds the k points that appear most frequently in the
    k-n-match answer sets for every ``n`` in ``n_range``;
    ``frequencies[i]`` is the number of such answer sets containing
    ``ids[i]``.  ``answer_sets`` optionally exposes the per-n answer sets
    (id lists in ascending n-match-difference order) for inspection.
    """

    ids: List[int]
    frequencies: List[int]
    k: int
    n_range: Tuple[int, int]
    answer_sets: Optional[Dict[int, List[int]]] = None
    stats: SearchStats = field(default_factory=SearchStats)
    #: optional per-query cost trace (:class:`repro.obs.QueryTrace`),
    #: attached by :class:`~repro.core.engine.MatchDatabase` when the
    #: caller passes ``trace=True``; ``None`` otherwise.
    trace: Optional[object] = None

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.frequencies):
            raise ValueError(
                "ids and frequencies must have equal length "
                f"({len(self.ids)} != {len(self.frequencies)})"
            )

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.frequencies))


def rank_by_frequency(
    answer_sets: Dict[int, Sequence[int]], k: int
) -> Tuple[List[int], List[int]]:
    """Pick the ``k`` ids appearing most often across ``answer_sets``.

    The deterministic tie-break order is: higher frequency first, then
    better (smaller) best-rank across the answer sets a point appears in,
    then smaller id.  Every engine uses this helper so that frequent
    k-n-match answers are identical across engines, which the
    cross-engine equivalence tests rely on.

    Parameters
    ----------
    answer_sets:
        Mapping ``n -> answer id list`` where each list is ordered by
        ascending n-match difference.
    k:
        Number of ids to return.  If fewer than ``k`` distinct ids exist,
        all of them are returned.
    """
    frequency: Dict[int, int] = {}
    best_rank: Dict[int, int] = {}
    for ids in answer_sets.values():
        seen_here = set()
        for rank, pid in enumerate(ids):
            if pid in seen_here:  # tolerate duplicate ids within a set
                continue
            seen_here.add(pid)
            frequency[pid] = frequency.get(pid, 0) + 1
            previous = best_rank.get(pid)
            if previous is None or rank < previous:
                best_rank[pid] = rank
    ordered = sorted(
        frequency, key=lambda pid: (-frequency[pid], best_rank[pid], pid)
    )
    chosen = ordered[:k]
    return chosen, [frequency[pid] for pid in chosen]
