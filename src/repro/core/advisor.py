"""Cost estimation and engine recommendation.

The AD algorithm's cost (attributes retrieved, Thm 3.2) depends on the
data distribution, ``k`` and above all ``n1`` — Figs. 9/12/15 show it
ranging from a few percent to nearly everything.  Before committing to a
configuration, :func:`estimate_fraction_retrieved` measures the expected
fraction on a sample of queries drawn from the data itself (the paper's
query protocol), and :func:`recommend_engine` turns the estimate plus
the workload shape into a concrete engine choice with a stated reason.

The estimate is exact for the sampled queries (it runs the real engine
and reads the real counters) — the only approximation is sampling.  It
is run with the query **kind actually being planned** (``kind=``): a
frequent query consumes until every ``n`` in the range is satisfied
(``n1`` binds, so its cost is the plain cost *at* ``n1``), while a
plain k-n-match workload over the same range issues single-``n``
queries across it, whose expected cost is the *average* of the plain
costs over the range — strictly cheaper whenever ``n0 < n1``.
Conflating the two (the old behaviour: always ``frequent``) charged
every plain-k-n-match plan the worst ``n`` in its range.

``recommend_engine`` covers the full engine family: the in-memory
registry engines for ``minimize="attributes"`` / ``"wall-clock"``, and
the disk-resident engines (sequential scan, disk-AD, VA-file) priced
under a calibrated :class:`~repro.storage.DiskModel` for
``minimize="disk-time"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from . import validation
from .ad import ADEngine

__all__ = [
    "CostEstimate",
    "EngineAdvice",
    "ESTIMATE_KINDS",
    "estimate_fraction_retrieved",
    "recommend_engine",
    "sample_row_ids",
]

#: Workload kinds an estimate can be taken for.
ESTIMATE_KINDS = ("frequent", "k-n-match")

#: Bytes per stored attribute (float64 columns).
_ATTRIBUTE_BYTES = 8


def sample_row_ids(
    cardinality: int, size: int, seed: int = 0
) -> np.ndarray:
    """``size`` distinct row ids in O(size), deterministic per seed.

    Floyd's sampling algorithm: the old
    ``rng.choice(cardinality, replace=False)`` materialised (and
    permuted) all ``cardinality`` ids to draw a handful of samples —
    O(cardinality) time and memory per estimate, which the planner pays
    on every cold workload.  This touches only ``size`` ids.
    """
    size = min(int(size), int(cardinality))
    rng = np.random.default_rng(seed)
    chosen = []
    seen = set()
    for upper in range(cardinality - size, cardinality):
        pick = int(rng.integers(0, upper + 1))
        if pick in seen:
            pick = upper
        seen.add(pick)
        chosen.append(pick)
    return np.asarray(chosen, dtype=np.int64)


@dataclass(frozen=True)
class CostEstimate:
    """Sampled attribute-retrieval statistics for one configuration."""

    k: int
    n_range: Tuple[int, int]
    sample_size: int
    mean_fraction: float
    max_fraction: float
    kind: str = "frequent"

    def __str__(self) -> str:
        workload = (
            "AD" if self.kind == "frequent" else f"k-{self.n_range[1]}-match AD"
        )
        return (
            f"k={self.k}, n in {self.n_range}: {workload} retrieves "
            f"{self.mean_fraction:.1%} of attributes on average "
            f"(max {self.max_fraction:.1%} over {self.sample_size} sampled queries)"
        )


@dataclass(frozen=True)
class EngineAdvice:
    """A recommendation plus the estimate it was based on."""

    engine: str
    reason: str
    estimate: CostEstimate


def estimate_fraction_retrieved(
    db,
    k: int,
    n_range: Tuple[int, int],
    sample_queries: int = 5,
    seed: int = 0,
    kind: str = "frequent",
    metrics: Optional[object] = None,
    spans: Optional[object] = None,
) -> CostEstimate:
    """Expected fraction of attributes AD retrieves for this workload.

    Queries are sampled from the database itself and run through the
    reference AD engine; the reported fractions are exact counters.

    ``kind`` is the workload being planned: ``"frequent"`` runs the
    frequent k-n-match over ``n_range`` (the historical behaviour);
    ``"k-n-match"`` models a workload of single-``n`` queries spread
    across the range by running plain k-n-match at ``n0``, the midpoint
    and ``n1`` and pooling the fractions — callers planning one fixed
    ``n`` pass ``(n, n)`` and get exactly the plain cost at that ``n``.

    ``metrics=`` / ``spans=`` install the observability hooks on the
    probe engine, so planning cost shows up in the same registry and
    span trees as the queries it plans for.
    """
    k = validation.validate_k(k, db.cardinality)
    n0, n1 = validation.validate_n_range(n_range, db.dimensionality)
    if kind not in ESTIMATE_KINDS:
        raise ValidationError(
            f"unknown estimate kind {kind!r}; choose from {ESTIMATE_KINDS}"
        )
    if sample_queries < 1:
        raise ValidationError(
            f"sample_queries must be >= 1; got {sample_queries}"
        )
    picks = sample_row_ids(db.cardinality, sample_queries, seed)
    engine = ADEngine(db.columns, metrics=metrics, spans=spans)
    if kind == "frequent":
        fractions = [
            engine.frequent_k_n_match(
                db.data[index], k, (n0, n1), keep_answer_sets=False
            ).stats.fraction_retrieved
            for index in picks
        ]
    else:
        sampled_ns = sorted({n0, (n0 + n1) // 2, n1})
        fractions = [
            engine.k_n_match(db.data[index], k, n).stats.fraction_retrieved
            for index in picks
            for n in sampled_ns
        ]
    return CostEstimate(
        k=k,
        n_range=(n0, n1),
        sample_size=len(fractions),
        mean_fraction=float(np.mean(fractions)),
        max_fraction=float(np.max(fractions)),
        kind=kind,
    )


def recommend_engine(
    db,
    k: int,
    n_range: Tuple[int, int],
    minimize: str = "wall-clock",
    sample_queries: int = 5,
    seed: int = 0,
    estimate: Optional[CostEstimate] = None,
    kind: str = "frequent",
    disk_model=None,
) -> EngineAdvice:
    """Pick an engine for this workload and say why.

    ``minimize`` is what the caller pays for:

    * ``"attributes"`` — the multiple-system setting, where every
      retrieved attribute is billed: the reference AD engine is optimal
      by Thm 3.2, full stop.
    * ``"wall-clock"`` — local in-memory search: block-AD's numpy
      batching usually wins, except when the estimated retrieval is so
      close to everything that a plain vectorised scan is simpler and at
      least as fast.
    * ``"disk-time"`` — disk-resident data: the sequential scan, the
      disk-AD engine and the VA-file are priced under ``disk_model``
      (default :data:`~repro.storage.DEFAULT_DISK_MODEL`) using the
      sampled estimate, and the cheapest simulated time wins.

    ``kind`` is forwarded to :func:`estimate_fraction_retrieved` when no
    ``estimate`` is supplied, so a plain-k-n-match workload is estimated
    as one.
    """
    if minimize not in ("attributes", "wall-clock", "disk-time"):
        raise ValidationError(
            "minimize must be 'attributes', 'wall-clock' or 'disk-time'; "
            f"got {minimize!r}"
        )
    if estimate is None:
        estimate = estimate_fraction_retrieved(
            db, k, n_range, sample_queries=sample_queries, seed=seed,
            kind=kind,
        )

    if minimize == "attributes":
        return EngineAdvice(
            engine="ad",
            reason=(
                "the reference AD engine retrieves provably minimal "
                "attributes (Thm 3.2); every other engine over-fetches"
            ),
            estimate=estimate,
        )
    if minimize == "disk-time":
        return _recommend_disk_engine(db, k, estimate, disk_model)
    if estimate.mean_fraction > 0.6:
        return EngineAdvice(
            engine="naive",
            reason=(
                f"AD would retrieve {estimate.mean_fraction:.0%} of the "
                "database anyway; one vectorised scan is the cheapest "
                "way to touch (nearly) everything"
            ),
            estimate=estimate,
        )
    return EngineAdvice(
        engine="block-ad",
        reason=(
            f"AD needs only {estimate.mean_fraction:.0%} of the "
            "attributes and block-AD fetches them in numpy batches"
        ),
        estimate=estimate,
    )


def _recommend_disk_engine(
    db, k: int, estimate: CostEstimate, disk_model
) -> EngineAdvice:
    """Price the disk-resident engines under the disk model; pick min.

    The formulas mirror ``docs/cost_model.md``: the scan streams every
    heap page sequentially; disk-AD pays ~3 seeks per dimension (locate
    plus two cursor starts) and then walks its fraction of the columns
    sequentially; the VA-file streams the whole approximation and then
    fetches each surviving candidate's page randomly (id order over
    scattered survivors).
    """
    if disk_model is None:
        from ..storage import DEFAULT_DISK_MODEL

        disk_model = DEFAULT_DISK_MODEL
    cardinality = db.cardinality
    dimensionality = db.dimensionality
    total = cardinality * dimensionality
    page = disk_model.page_size

    def pages(byte_count: float) -> int:
        return max(1, math.ceil(byte_count / page))

    costs: Dict[str, float] = {}
    costs["naive"] = (
        pages(total * _ATTRIBUTE_BYTES) * disk_model.sequential_read_seconds
        + total * disk_model.cpu_seconds_per_attribute
    )
    retrieved = estimate.mean_fraction * total
    costs["disk-ad"] = (
        3 * dimensionality * disk_model.random_read_seconds
        + pages(retrieved * _ATTRIBUTE_BYTES)
        * disk_model.sequential_read_seconds
        + retrieved * disk_model.cpu_seconds_per_attribute
    )
    # 8-bit approximation cells; candidates bounded below by the k answers
    candidates = max(k, estimate.max_fraction * cardinality)
    costs["va-file"] = (
        pages(total) * disk_model.sequential_read_seconds
        + candidates * disk_model.random_read_seconds
        + total * disk_model.cpu_seconds_per_attribute
        + candidates * dimensionality * disk_model.cpu_seconds_per_attribute
    )
    engine = min(costs, key=lambda name: (costs[name], name))
    priced = ", ".join(
        f"{name} {costs[name] * 1e3:.1f}ms" for name in sorted(costs)
    )
    return EngineAdvice(
        engine=engine,
        reason=(
            f"cheapest simulated disk time at {estimate.mean_fraction:.0%} "
            f"estimated retrieval ({priced}; page size {page} B)"
        ),
        estimate=estimate,
    )
