"""Cost estimation and engine recommendation.

The AD algorithm's cost (attributes retrieved, Thm 3.2) depends on the
data distribution, ``k`` and above all ``n1`` — Figs. 9/12/15 show it
ranging from a few percent to nearly everything.  Before committing to a
configuration, :func:`estimate_fraction_retrieved` measures the expected
fraction on a sample of queries drawn from the data itself (the paper's
query protocol), and :func:`recommend_engine` turns the estimate plus
the workload shape into a concrete engine choice with a stated reason.

The estimate is exact for the sampled queries (it runs the real engine
and reads the real counters) — the only approximation is sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError
from . import validation
from .ad import ADEngine
from .engine import MatchDatabase

__all__ = ["CostEstimate", "EngineAdvice", "estimate_fraction_retrieved", "recommend_engine"]


@dataclass(frozen=True)
class CostEstimate:
    """Sampled attribute-retrieval statistics for one configuration."""

    k: int
    n_range: Tuple[int, int]
    sample_size: int
    mean_fraction: float
    max_fraction: float

    def __str__(self) -> str:
        return (
            f"k={self.k}, n in {self.n_range}: AD retrieves "
            f"{self.mean_fraction:.1%} of attributes on average "
            f"(max {self.max_fraction:.1%} over {self.sample_size} sampled queries)"
        )


@dataclass(frozen=True)
class EngineAdvice:
    """A recommendation plus the estimate it was based on."""

    engine: str
    reason: str
    estimate: CostEstimate


def estimate_fraction_retrieved(
    db: MatchDatabase,
    k: int,
    n_range: Tuple[int, int],
    sample_queries: int = 5,
    seed: int = 0,
) -> CostEstimate:
    """Expected fraction of attributes AD retrieves for this workload.

    Queries are sampled from the database itself and run through the
    reference AD engine; the reported fractions are exact counters.
    """
    k = validation.validate_k(k, db.cardinality)
    n0, n1 = validation.validate_n_range(n_range, db.dimensionality)
    if sample_queries < 1:
        raise ValidationError(
            f"sample_queries must be >= 1; got {sample_queries}"
        )
    rng = np.random.default_rng(seed)
    picks = rng.choice(
        db.cardinality,
        size=min(sample_queries, db.cardinality),
        replace=False,
    )
    engine = ADEngine(db.columns)
    fractions = [
        engine.frequent_k_n_match(
            db.data[index], k, (n0, n1), keep_answer_sets=False
        ).stats.fraction_retrieved
        for index in picks
    ]
    return CostEstimate(
        k=k,
        n_range=(n0, n1),
        sample_size=len(fractions),
        mean_fraction=float(np.mean(fractions)),
        max_fraction=float(np.max(fractions)),
    )


def recommend_engine(
    db: MatchDatabase,
    k: int,
    n_range: Tuple[int, int],
    minimize: str = "wall-clock",
    sample_queries: int = 5,
    seed: int = 0,
    estimate: Optional[CostEstimate] = None,
) -> EngineAdvice:
    """Pick an engine for this workload and say why.

    ``minimize`` is what the caller pays for:

    * ``"attributes"`` — the multiple-system setting, where every
      retrieved attribute is billed: the reference AD engine is optimal
      by Thm 3.2, full stop.
    * ``"wall-clock"`` — local in-memory search: block-AD's numpy
      batching usually wins, except when the estimated retrieval is so
      close to everything that a plain vectorised scan is simpler and at
      least as fast.
    """
    if minimize not in ("attributes", "wall-clock"):
        raise ValidationError(
            f"minimize must be 'attributes' or 'wall-clock'; got {minimize!r}"
        )
    if estimate is None:
        estimate = estimate_fraction_retrieved(
            db, k, n_range, sample_queries=sample_queries, seed=seed
        )

    if minimize == "attributes":
        return EngineAdvice(
            engine="ad",
            reason=(
                "the reference AD engine retrieves provably minimal "
                "attributes (Thm 3.2); every other engine over-fetches"
            ),
            estimate=estimate,
        )
    if estimate.mean_fraction > 0.6:
        return EngineAdvice(
            engine="naive",
            reason=(
                f"AD would retrieve {estimate.mean_fraction:.0%} of the "
                "database anyway; one vectorised scan is the cheapest "
                "way to touch (nearly) everything"
            ),
            estimate=estimate,
        )
    return EngineAdvice(
        engine="block-ad",
        reason=(
            f"AD needs only {estimate.mean_fraction:.0%} of the "
            "attributes and block-AD fetches them in numpy batches"
        ),
        estimate=estimate,
    )
