"""Public facade: :class:`MatchDatabase`.

A :class:`MatchDatabase` wraps a point set and answers k-n-match and
frequent k-n-match queries with a selectable engine:

* ``"ad"`` — the paper's AD algorithm (optimal attribute retrieval),
* ``"block-ad"`` — the vectorised variant (same answers, numpy speed),
* ``"batch-block-ad"`` — block-AD growing a whole query batch in
  lock-step (same answers; much higher batch throughput),
* ``"naive"`` — the full-scan oracle,
* ``"auto"`` — not an engine but a *choice*: the cost-based planner
  (:mod:`repro.plan`) picks one of the exact engines per query, so
  answers stay bit-identical while the wall clock tracks the winner.

All engines share one :class:`~repro.sorted_lists.SortedColumns` build, so
switching engines on the same database is cheap.

>>> import numpy as np
>>> from repro import MatchDatabase
>>> db = MatchDatabase([[1.0, 2.0], [5.0, 2.1], [9.0, 9.0]])
>>> db.k_n_match([5.0, 2.0], k=1, n=1).ids
[1]
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ValidationError
from ..sorted_lists import SortedColumns
from . import validation
from .ad import ADEngine
from .ad_block import BlockADEngine
from .naive import NaiveScanEngine
from .types import FrequentMatchResult, MatchResult

__all__ = [
    "MatchDatabase",
    "ENGINE_NAMES",
    "ENGINE_CHOICES",
    "AUTO_ENGINE",
    "ANYTIME_ENGINE",
    "validate_engine_name",
    "validate_engine_choice",
    "make_engine",
]


def _make_ad(columns: SortedColumns, metrics, spans):
    return ADEngine(columns, metrics=metrics, spans=spans)


def _make_block_ad(columns: SortedColumns, metrics, spans):
    return BlockADEngine(columns, metrics=metrics, spans=spans)


def _make_batch_block_ad(columns: SortedColumns, metrics, spans):
    # Imported lazily: repro.parallel depends on this module.
    from ..parallel import BatchBlockADEngine

    return BatchBlockADEngine(columns, metrics=metrics, spans=spans)


def _make_naive(columns: SortedColumns, metrics, spans):
    return NaiveScanEngine(columns.data, metrics=metrics, spans=spans)


#: The one engine registry: name -> factory taking
#: ``(columns, metrics, spans)``.  Adding an engine here is the whole
#: registration step — the name tuple, :class:`MatchDatabase`
#: construction, the shard layer and the CLI choices all derive from
#: this mapping.
_ENGINE_FACTORIES = {
    "ad": _make_ad,
    "block-ad": _make_block_ad,
    "batch-block-ad": _make_batch_block_ad,
    "naive": _make_naive,
}

#: Engines selectable through :class:`MatchDatabase` (registry order).
ENGINE_NAMES = tuple(_ENGINE_FACTORIES)

#: The pseudo-engine resolved per query by the cost-based planner
#: (:mod:`repro.plan`).  It is *not* in the registry — it never runs —
#: so ``engine()`` rejects it while the query methods accept it.
AUTO_ENGINE = "auto"

#: What callers may pass as ``engine=``: every registry engine plus the
#: planner pseudo-engine.  CLI ``--engine`` choices derive from this.
ENGINE_CHOICES = ENGINE_NAMES + (AUTO_ENGINE,)

#: The budgeted-prefix engine (:class:`~repro.core.anytime.AnytimeADEngine`).
#: Like ``"auto"`` it is not in the registry — it answers ``k_n_match``
#: only, takes ``attribute_budget=`` and returns an
#: :class:`~repro.core.anytime.AnytimeResult` (a verified *prefix*, not
#: always k answers), so it is special-cased rather than registered.
ANYTIME_ENGINE = "anytime"


def validate_engine_name(name: str) -> str:
    """Check ``name`` against the engine registry and return it.

    Every layer that accepts an engine name (:class:`MatchDatabase`, the
    sharded database, the CLI) funnels through here, so an unknown
    engine raises the same :class:`ValidationError` — same message, same
    valid-name list — everywhere.
    """
    if name not in _ENGINE_FACTORIES:
        raise ValidationError(
            f"unknown engine {name!r}; choose from {ENGINE_NAMES}"
        )
    return name


def validate_engine_choice(name: str) -> str:
    """Like :func:`validate_engine_name`, but also admitting ``"auto"``.

    Layers that resolve the planner pseudo-engine per query (the
    database facades, ``serve``, the CLI) validate through here; layers
    that need a concrete engine keep using :func:`validate_engine_name`.
    """
    if name == AUTO_ENGINE:
        return name
    if name not in _ENGINE_FACTORIES:
        raise ValidationError(
            f"unknown engine {name!r}; choose from {ENGINE_CHOICES}"
        )
    return name


def make_engine(name: str, columns: SortedColumns, metrics=None, spans=None):
    """Build a standalone engine over an existing sorted-column build.

    Used by the planner's calibration probes, which need throwaway
    engine instances (typically unmetered, so probe queries never
    inflate the logical query counters) sharing the database's columns.
    """
    name = validate_engine_name(name)
    return _ENGINE_FACTORIES[name](columns, metrics, spans)


class MatchDatabase:
    """In-memory matching-based similarity search over a point set.

    Pass ``metrics=`` (a :class:`~repro.obs.MetricsRegistry`) to have
    every engine record per-query cost counters; pass ``spans=`` (a
    :class:`~repro.obs.SpanCollector`) to have every engine record
    hierarchical phase spans; pass ``trace=True`` on a query call to get
    a :class:`~repro.obs.QueryTrace` attached to the result.  All are
    off by default and cost nothing when off.
    """

    def __init__(
        self,
        data,
        default_engine: str = "ad",
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        validate_engine_choice(default_engine)
        self._columns = SortedColumns(data)
        self._default_engine = default_engine
        self._engines: Dict[str, object] = {}
        self._approx_engines: Dict[str, object] = {}
        self._anytime = None
        self._metrics = metrics
        self._spans = spans
        self._planner = None
        self._plan_model = None

    @classmethod
    def from_columns(
        cls,
        columns: SortedColumns,
        default_engine: str = "ad",
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> "MatchDatabase":
        """Wrap an existing :class:`SortedColumns` build without re-sorting.

        The zero-copy constructor shared by the persistence loader and
        the shared-memory shard workers: the columns (typically restored
        from disk or mapped from a shared segment) are adopted as-is.
        """
        validate_engine_choice(default_engine)
        db = cls.__new__(cls)
        db._columns = columns
        db._default_engine = default_engine
        db._engines = {}
        db._approx_engines = {}
        db._anytime = None
        db._metrics = metrics
        db._spans = spans
        db._planner = None
        db._plan_model = None
        return db

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The ``(cardinality, dimensionality)`` array being searched."""
        return self._columns.data

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    @property
    def columns(self) -> SortedColumns:
        """The shared sorted-column substrate (built once)."""
        return self._columns

    @property
    def default_engine(self) -> str:
        return self._default_engine

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    def set_metrics(self, registry) -> None:
        """Install (or remove, with ``None``) a metrics registry.

        Applies to already-constructed engines as well as engines built
        after the call.
        """
        self._metrics = registry
        for engine in self._engines.values():
            engine.metrics = registry
        for engine in self._approx_engines.values():
            engine.metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    def set_spans(self, collector) -> None:
        """Install (or remove, with ``None``) a span collector.

        Applies to already-constructed engines as well as engines built
        after the call.
        """
        self._spans = collector
        for engine in self._engines.values():
            engine.spans = collector
        for engine in self._approx_engines.values():
            engine.spans = collector

    def engine(self, name: Optional[str] = None):
        """Return (lazily constructing) the engine called ``name``.

        ``"auto"`` is rejected here: it is a per-query planner decision,
        not a constructible engine — run a query with ``engine="auto"``
        or ask :meth:`plan_query` which engine it resolves to.
        """
        name = name or self._default_engine
        if name == AUTO_ENGINE:
            raise ValidationError(
                "engine 'auto' is resolved per query by the planner; run "
                "a query with engine='auto' or call plan_query() to see "
                "the decision"
            )
        name = validate_engine_name(name)
        if name not in self._engines:
            self._engines[name] = _ENGINE_FACTORIES[name](
                self._columns, self._metrics, self._spans
            )
        return self._engines[name]

    # ------------------------------------------------------------------
    # cost-based planning (engine="auto")
    # ------------------------------------------------------------------
    @property
    def planner(self):
        """The lazily built :class:`~repro.plan.QueryPlanner` for this db."""
        if self._planner is None:
            from ..plan import QueryPlanner

            self._planner = QueryPlanner(self, model=self._plan_model)
        return self._planner

    def set_plan_model(self, model) -> None:
        """Install a :class:`~repro.plan.PlanModel` (e.g. a loaded sidecar).

        Resets the planner so cached decisions are re-made against the
        new curves.  ``None`` reverts to an empty model (probe-on-demand).
        """
        self._plan_model = model
        self._planner = None

    def plan_query(
        self,
        kind: str,
        k: int,
        n_range,
        batched: bool = False,
        mode: str = "exact",
        target_recall=None,
    ):
        """The :class:`~repro.plan.QueryPlan` ``engine="auto"`` would use."""
        return self.planner.plan(
            kind, k, n_range, batched=batched, mode=mode,
            target_recall=target_recall,
        )

    def _resolve_engine(self, name, kind, k, n_range, batched=False):
        """Resolve an ``engine=`` choice to ``(concrete name, plan|None)``."""
        choice = name if name is not None else self._default_engine
        if choice != AUTO_ENGINE:
            if choice not in _ENGINE_FACTORIES:
                self._reject_special_engine(choice)
            return validate_engine_name(choice), None
        plan = self.plan_query(kind, k, n_range, batched=batched)
        return plan.engine, plan

    def _reject_special_engine(self, choice) -> None:
        """Precise errors for engine names that exist but don't fit here.

        The approx engines and ``"anytime"`` are real engines a caller
        may have heard of, so the unknown-engine message would mislead;
        falls through to :func:`validate_engine_name` for truly unknown
        names.
        """
        from ..approx import APPROX_ENGINE_NAMES

        if choice in APPROX_ENGINE_NAMES:
            raise ValidationError(
                f"engine {choice!r} is approximate; pass mode='approx' "
                "to use it"
            )
        if choice == ANYTIME_ENGINE:
            raise ValidationError(
                "engine 'anytime' supports k_n_match only (with "
                "attribute_budget=)"
            )
        validate_engine_name(choice)

    # ------------------------------------------------------------------
    # approximate tier (mode="approx") and the anytime prefix engine
    # ------------------------------------------------------------------
    def _approx_engine(self, name: str):
        """Return (lazily constructing) the approx engine called ``name``."""
        if name not in self._approx_engines:
            from ..approx import (
                BudgetADEngine,
                PivotSketchEngine,
                validate_approx_engine,
            )

            validate_approx_engine(name)
            factory = {
                "budget-ad": BudgetADEngine,
                "pivot-sketch": PivotSketchEngine,
            }[name]
            self._approx_engines[name] = factory(
                self._columns, metrics=self._metrics, spans=self._spans
            )
        return self._approx_engines[name]

    def _resolve_approx_engine(self, name, kind, k, n_range, target_recall):
        """Resolve ``engine=`` under ``mode="approx"`` to (name, plan|None).

        ``None`` defaults to the certified engine; ``"auto"`` asks the
        planner, which only ever picks an approx engine here — never on
        an exact query (the caller declared the mode, the planner just
        prices within it).
        """
        from ..approx import DEFAULT_APPROX_ENGINE, validate_approx_engine

        choice = name if name is not None else DEFAULT_APPROX_ENGINE
        if choice != AUTO_ENGINE:
            return validate_approx_engine(choice), None
        plan = self.planner.plan(
            kind, k, n_range, mode="approx", target_recall=target_recall
        )
        return plan.engine, plan

    def _k_n_match_anytime(
        self, query, k, n, engine, trace, mode, budget, target_recall,
        candidate_multiplier, attribute_budget,
    ):
        if engine is not None and engine != ANYTIME_ENGINE:
            raise ValidationError(
                "attribute_budget requires engine='anytime'"
            )
        extras = (mode, budget, target_recall, candidate_multiplier)
        if any(value is not None for value in extras):
            raise ValidationError(
                "engine 'anytime' takes attribute_budget=; mode/budget/"
                "target_recall/candidate_multiplier do not apply"
            )
        if self._anytime is None:
            from .anytime import AnytimeADEngine

            self._anytime = AnytimeADEngine(self._columns)
        started = time.perf_counter()
        result = self._anytime.k_n_match(
            query, k, n, attribute_budget=attribute_budget
        )
        if trace:
            result.trace = self._build_trace(
                self._anytime, "k_n_match", result.k, (result.n, result.n),
                result.stats, started,
            )
        return result

    def _k_n_match_approx(
        self, query, k, n, engine, trace, budget, target_recall,
        candidate_multiplier,
    ):
        from ..approx import DEFAULT_TARGET_RECALL

        query, k, n = validation.validate_match_args(
            query, k, n, self.cardinality, self.dimensionality
        )
        if (
            budget is None
            and target_recall is None
            and candidate_multiplier is None
        ):
            target_recall = DEFAULT_TARGET_RECALL
        resolved, plan = self._resolve_approx_engine(
            engine, "k_n_match", k, (n, n), target_recall
        )
        selected = self._approx_engine(resolved)
        started = time.perf_counter()
        result = selected.k_n_match(
            query, k, n, budget=budget, target_recall=target_recall,
            candidate_multiplier=candidate_multiplier,
        )
        if plan is not None:
            self._observe_plan(
                plan,
                result.stats.attributes_retrieved,
                time.perf_counter() - started,
            )
            self.planner.record_recall(plan.engine, result.certified_recall)
        if trace:
            result.trace = self._build_trace(
                selected, "k_n_match", result.k, (result.n, result.n),
                result.stats, started,
            )
        return result

    def _k_n_match_batch_approx(
        self, queries, k, n, engine, budget, target_recall,
        candidate_multiplier,
    ):
        from ..approx import DEFAULT_TARGET_RECALL

        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, self.cardinality, self.dimensionality
        )
        if (
            budget is None
            and target_recall is None
            and candidate_multiplier is None
        ):
            target_recall = DEFAULT_TARGET_RECALL
        resolved, plan = self._resolve_approx_engine(
            engine, "k_n_match", k, (n, n), target_recall
        )
        selected = self._approx_engine(resolved)
        started = time.perf_counter()
        results = [
            selected.k_n_match(
                query, k, n, budget=budget, target_recall=target_recall,
                candidate_multiplier=candidate_multiplier,
            )
            for query in queries
        ]
        if plan is not None and results:
            self._observe_plan_batch(plan, results, started)
            mean_recall = sum(
                result.certified_recall for result in results
            ) / len(results)
            self.planner.record_recall(plan.engine, mean_recall)
        return results

    def _observe_plan(self, plan, cells, seconds) -> None:
        """Export one executed plan and feed its cost back into the model."""
        if self._metrics is not None:
            from ..obs.instrument import observe_plan_decision

            observe_plan_decision(
                self._metrics,
                engine=plan.engine,
                kind=plan.kind,
                predicted_seconds=plan.predicted_seconds,
                actual_seconds=seconds,
                fanout=plan.fanout,
            )
        self.planner.record_actual(plan, float(cells), seconds)

    def _observe_plan_batch(self, plan, results, started) -> None:
        """Per-query averages of one planned batch into model + metrics."""
        seconds = time.perf_counter() - started
        cells = sum(result.stats.attributes_retrieved for result in results)
        self._observe_plan(
            plan, cells / len(results), seconds / len(results)
        )

    # ------------------------------------------------------------------
    def k_n_match(
        self,
        query,
        k: int,
        n: int,
        engine: Optional[str] = None,
        trace: bool = False,
        mode: Optional[str] = None,
        budget: Optional[int] = None,
        target_recall: Optional[float] = None,
        candidate_multiplier: Optional[int] = None,
        attribute_budget: Optional[int] = None,
    ) -> MatchResult:
        """The k-n-match query (Definition 3).

        Find the ``k`` points whose n-match difference w.r.t. ``query``
        is smallest; the ``n`` best-matching dimensions are chosen
        per point, dynamically.  With ``trace=True`` the result carries
        a :class:`~repro.obs.QueryTrace` in ``result.trace``.

        ``mode="approx"`` switches to the approximate tier
        (:mod:`repro.approx`) and returns an
        :class:`~repro.approx.ApproxResult` carrying a per-query recall
        certificate; ``budget=`` / ``target_recall=`` /
        ``candidate_multiplier=`` tune it, and ``engine=`` then names an
        approx engine (or ``"auto"``).  ``engine="anytime"`` (with
        ``attribute_budget=``) runs the budgeted prefix engine and
        returns an :class:`~repro.core.anytime.AnytimeResult`.  The
        default mode is exact and answers are byte-identical to a call
        without any of these arguments.
        """
        if engine == ANYTIME_ENGINE or attribute_budget is not None:
            return self._k_n_match_anytime(
                query, k, n, engine, trace, mode, budget, target_recall,
                candidate_multiplier, attribute_budget,
            )
        if (
            mode is not None
            or budget is not None
            or target_recall is not None
            or candidate_multiplier is not None
        ):
            from ..approx import validate_approx_params

            mode, budget, target_recall, candidate_multiplier = (
                validate_approx_params(
                    mode, budget, target_recall, candidate_multiplier
                )
            )
            if mode == "approx":
                return self._k_n_match_approx(
                    query, k, n, engine, trace, budget, target_recall,
                    candidate_multiplier,
                )
        resolved, plan = self._resolve_engine(engine, "k_n_match", k, (n, n))
        selected = self.engine(resolved)
        if not trace and plan is None:
            return selected.k_n_match(query, k, n)
        started = time.perf_counter()
        result = selected.k_n_match(query, k, n)
        if plan is not None:
            self._observe_plan(
                plan,
                result.stats.attributes_retrieved,
                time.perf_counter() - started,
            )
        if trace:
            result.trace = self._build_trace(
                selected, "k_n_match", result.k, (result.n, result.n),
                result.stats, started,
            )
        return result

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = True,
        trace: bool = False,
        mode: Optional[str] = None,
    ) -> FrequentMatchResult:
        """The frequent k-n-match query (Definition 4).

        Runs k-n-match for every ``n`` in ``n_range`` (default
        ``[1, d]``) and returns the ``k`` points appearing most often
        across the answer sets.  With ``trace=True`` the result carries
        a :class:`~repro.obs.QueryTrace` in ``result.trace``.
        ``mode="approx"`` is rejected: the frequency vote has no
        per-query certificate semantics.
        """
        if mode is not None:
            from ..approx import APPROX_FREQUENT_MESSAGE, validate_mode

            if validate_mode(mode) == "approx":
                raise ValidationError(APPROX_FREQUENT_MESSAGE)
        if n_range is None:
            n_range = (1, self.dimensionality)
        resolved, plan = self._resolve_engine(
            engine, "frequent_k_n_match", k, n_range
        )
        selected = self.engine(resolved)
        if not trace and plan is None:
            return selected.frequent_k_n_match(
                query, k, n_range, keep_answer_sets=keep_answer_sets
            )
        started = time.perf_counter()
        result = selected.frequent_k_n_match(
            query, k, n_range, keep_answer_sets=keep_answer_sets
        )
        if plan is not None:
            self._observe_plan(
                plan,
                result.stats.attributes_retrieved,
                time.perf_counter() - started,
            )
        if trace:
            result.trace = self._build_trace(
                selected, "frequent_k_n_match", result.k, result.n_range,
                result.stats, started,
            )
        return result

    def _build_trace(self, selected, kind, k, n_range, stats, started):
        from ..obs import QueryTrace

        spans = self._spans
        return QueryTrace.from_stats(
            engine=selected.name,
            kind=kind,
            k=k,
            n_range=n_range,
            stats=stats,
            wall_time_seconds=time.perf_counter() - started,
            dimensionality=self.dimensionality,
            trace_id=(
                spans.capture_context("trace_id")
                if spans is not None
                else None
            ),
        )

    def k_n_match_batch(
        self,
        queries,
        k: int,
        n: int,
        engine: Optional[str] = None,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        budget: Optional[int] = None,
        target_recall: Optional[float] = None,
        candidate_multiplier: Optional[int] = None,
    ) -> "List[MatchResult]":
        """Run one k-n-match per row of ``queries``; results in query order.

        The sorted-column *build* is amortised across the batch (all
        engines share one build), but by default the queries themselves
        run serially, one engine call per row — except for engines with
        a native batch path (``"batch-block-ad"``), which execute the
        whole batch in one lock-step call.

        ``parallel=True`` (or passing ``workers``) instead shards the
        batch across a :class:`~repro.parallel.ParallelBatchExecutor`
        thread pool — an escape hatch for large batches on multi-core
        machines.  Answers are identical on every path.

        ``mode="approx"`` runs the whole batch on one approx engine
        (planned once for ``engine="auto"``) and returns a list of
        :class:`~repro.approx.ApproxResult`.
        """
        if (
            mode is not None
            or budget is not None
            or target_recall is not None
            or candidate_multiplier is not None
        ):
            from ..approx import validate_approx_params

            mode, budget, target_recall, candidate_multiplier = (
                validate_approx_params(
                    mode, budget, target_recall, candidate_multiplier
                )
            )
            if mode == "approx":
                if parallel or workers is not None:
                    raise ValidationError(
                        "parallel batch execution does not support "
                        "mode='approx'"
                    )
                return self._k_n_match_batch_approx(
                    queries, k, n, engine, budget, target_recall,
                    candidate_multiplier,
                )
        # Validate everything up front (canonical order: k, n, queries)
        # so every engine — including an empty batch, where no per-query
        # call ever runs — rejects the same bad input the same way.
        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, self.cardinality, self.dimensionality
        )
        resolved, plan = self._resolve_engine(
            engine, "k_n_match", k, (n, n), batched=True
        )
        selected = self.engine(resolved)
        executor = self._batch_executor(selected, parallel, workers)
        started = time.perf_counter() if plan is not None else None
        if executor is not None:
            results = executor.k_n_match_batch(queries, k, n)
        else:
            native = getattr(selected, "k_n_match_batch", None)
            if native is not None:
                results = native(queries, k, n)
            else:
                results = [
                    selected.k_n_match(query, k, n) for query in queries
                ]
        if plan is not None and results:
            self._observe_plan_batch(plan, results, started)
        return results

    def frequent_k_n_match_batch(
        self,
        queries,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> "List[FrequentMatchResult]":
        """Run one frequent k-n-match per row of ``queries``.

        Batch dispatch (native batch engines, the ``parallel=`` /
        ``workers=`` escape hatch) works exactly as in
        :meth:`k_n_match_batch`.  ``mode="approx"`` is rejected as in
        :meth:`frequent_k_n_match`.
        """
        if mode is not None:
            from ..approx import APPROX_FREQUENT_MESSAGE, validate_mode

            if validate_mode(mode) == "approx":
                raise ValidationError(APPROX_FREQUENT_MESSAGE)
        if n_range is None:
            n_range = (1, self.dimensionality)
        queries, k, n_range = validation.validate_batch_frequent_args(
            queries, k, n_range, self.cardinality, self.dimensionality
        )
        resolved, plan = self._resolve_engine(
            engine, "frequent_k_n_match", k, n_range, batched=True
        )
        selected = self.engine(resolved)
        executor = self._batch_executor(selected, parallel, workers)
        started = time.perf_counter() if plan is not None else None
        if executor is not None:
            results = executor.frequent_k_n_match_batch(
                queries, k, n_range, keep_answer_sets=keep_answer_sets
            )
        else:
            native = getattr(selected, "frequent_k_n_match_batch", None)
            if native is not None:
                results = native(
                    queries, k, n_range, keep_answer_sets=keep_answer_sets
                )
            else:
                results = [
                    selected.frequent_k_n_match(
                        query, k, n_range, keep_answer_sets=keep_answer_sets
                    )
                    for query in queries
                ]
        if plan is not None and results:
            self._observe_plan_batch(plan, results, started)
        return results

    def _batch_executor(self, selected, parallel, workers):
        """The thread-pool executor for a batch call, or None for in-line.

        ``parallel=True`` opts in explicitly; passing ``workers`` alone
        implies it.  ``parallel=False`` always stays in-line.
        """
        use_parallel = bool(parallel) or (parallel is None and workers is not None)
        if not use_parallel:
            return None
        # Imported lazily: repro.parallel depends on this module.
        from ..parallel import ParallelBatchExecutor

        return ParallelBatchExecutor(
            selected, workers=workers, metrics=self._metrics,
            spans=self._spans,
        )

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MatchDatabase(cardinality={self.cardinality}, "
            f"dimensionality={self.dimensionality}, "
            f"default_engine={self._default_engine!r})"
        )
