"""Public facade: :class:`MatchDatabase`.

A :class:`MatchDatabase` wraps a point set and answers k-n-match and
frequent k-n-match queries with a selectable engine:

* ``"ad"`` — the paper's AD algorithm (optimal attribute retrieval),
* ``"block-ad"`` — the vectorised variant (same answers, numpy speed),
* ``"batch-block-ad"`` — block-AD growing a whole query batch in
  lock-step (same answers; much higher batch throughput),
* ``"naive"`` — the full-scan oracle.

All engines share one :class:`~repro.sorted_lists.SortedColumns` build, so
switching engines on the same database is cheap.

>>> import numpy as np
>>> from repro import MatchDatabase
>>> db = MatchDatabase([[1.0, 2.0], [5.0, 2.1], [9.0, 9.0]])
>>> db.k_n_match([5.0, 2.0], k=1, n=1).ids
[1]
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ValidationError
from ..sorted_lists import SortedColumns
from . import validation
from .ad import ADEngine
from .ad_block import BlockADEngine
from .naive import NaiveScanEngine
from .types import FrequentMatchResult, MatchResult

__all__ = ["MatchDatabase", "ENGINE_NAMES", "validate_engine_name"]


def _make_ad(columns: SortedColumns, metrics, spans):
    return ADEngine(columns, metrics=metrics, spans=spans)


def _make_block_ad(columns: SortedColumns, metrics, spans):
    return BlockADEngine(columns, metrics=metrics, spans=spans)


def _make_batch_block_ad(columns: SortedColumns, metrics, spans):
    # Imported lazily: repro.parallel depends on this module.
    from ..parallel import BatchBlockADEngine

    return BatchBlockADEngine(columns, metrics=metrics, spans=spans)


def _make_naive(columns: SortedColumns, metrics, spans):
    return NaiveScanEngine(columns.data, metrics=metrics, spans=spans)


#: The one engine registry: name -> factory taking
#: ``(columns, metrics, spans)``.  Adding an engine here is the whole
#: registration step — the name tuple, :class:`MatchDatabase`
#: construction, the shard layer and the CLI choices all derive from
#: this mapping.
_ENGINE_FACTORIES = {
    "ad": _make_ad,
    "block-ad": _make_block_ad,
    "batch-block-ad": _make_batch_block_ad,
    "naive": _make_naive,
}

#: Engines selectable through :class:`MatchDatabase` (registry order).
ENGINE_NAMES = tuple(_ENGINE_FACTORIES)


def validate_engine_name(name: str) -> str:
    """Check ``name`` against the engine registry and return it.

    Every layer that accepts an engine name (:class:`MatchDatabase`, the
    sharded database, the CLI) funnels through here, so an unknown
    engine raises the same :class:`ValidationError` — same message, same
    valid-name list — everywhere.
    """
    if name not in _ENGINE_FACTORIES:
        raise ValidationError(
            f"unknown engine {name!r}; choose from {ENGINE_NAMES}"
        )
    return name


class MatchDatabase:
    """In-memory matching-based similarity search over a point set.

    Pass ``metrics=`` (a :class:`~repro.obs.MetricsRegistry`) to have
    every engine record per-query cost counters; pass ``spans=`` (a
    :class:`~repro.obs.SpanCollector`) to have every engine record
    hierarchical phase spans; pass ``trace=True`` on a query call to get
    a :class:`~repro.obs.QueryTrace` attached to the result.  All are
    off by default and cost nothing when off.
    """

    def __init__(
        self,
        data,
        default_engine: str = "ad",
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        validate_engine_name(default_engine)
        self._columns = SortedColumns(data)
        self._default_engine = default_engine
        self._engines: Dict[str, object] = {}
        self._metrics = metrics
        self._spans = spans

    @classmethod
    def from_columns(
        cls,
        columns: SortedColumns,
        default_engine: str = "ad",
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> "MatchDatabase":
        """Wrap an existing :class:`SortedColumns` build without re-sorting.

        The zero-copy constructor shared by the persistence loader and
        the shared-memory shard workers: the columns (typically restored
        from disk or mapped from a shared segment) are adopted as-is.
        """
        validate_engine_name(default_engine)
        db = cls.__new__(cls)
        db._columns = columns
        db._default_engine = default_engine
        db._engines = {}
        db._metrics = metrics
        db._spans = spans
        return db

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The ``(cardinality, dimensionality)`` array being searched."""
        return self._columns.data

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    @property
    def columns(self) -> SortedColumns:
        """The shared sorted-column substrate (built once)."""
        return self._columns

    @property
    def default_engine(self) -> str:
        return self._default_engine

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    def set_metrics(self, registry) -> None:
        """Install (or remove, with ``None``) a metrics registry.

        Applies to already-constructed engines as well as engines built
        after the call.
        """
        self._metrics = registry
        for engine in self._engines.values():
            engine.metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    def set_spans(self, collector) -> None:
        """Install (or remove, with ``None``) a span collector.

        Applies to already-constructed engines as well as engines built
        after the call.
        """
        self._spans = collector
        for engine in self._engines.values():
            engine.spans = collector

    def engine(self, name: Optional[str] = None):
        """Return (lazily constructing) the engine called ``name``."""
        name = validate_engine_name(name or self._default_engine)
        if name not in self._engines:
            self._engines[name] = _ENGINE_FACTORIES[name](
                self._columns, self._metrics, self._spans
            )
        return self._engines[name]

    # ------------------------------------------------------------------
    def k_n_match(
        self,
        query,
        k: int,
        n: int,
        engine: Optional[str] = None,
        trace: bool = False,
    ) -> MatchResult:
        """The k-n-match query (Definition 3).

        Find the ``k`` points whose n-match difference w.r.t. ``query``
        is smallest; the ``n`` best-matching dimensions are chosen
        per point, dynamically.  With ``trace=True`` the result carries
        a :class:`~repro.obs.QueryTrace` in ``result.trace``.
        """
        selected = self.engine(engine)
        if not trace:
            return selected.k_n_match(query, k, n)
        started = time.perf_counter()
        result = selected.k_n_match(query, k, n)
        result.trace = self._build_trace(
            selected, "k_n_match", result.k, (result.n, result.n),
            result.stats, started,
        )
        return result

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = True,
        trace: bool = False,
    ) -> FrequentMatchResult:
        """The frequent k-n-match query (Definition 4).

        Runs k-n-match for every ``n`` in ``n_range`` (default
        ``[1, d]``) and returns the ``k`` points appearing most often
        across the answer sets.  With ``trace=True`` the result carries
        a :class:`~repro.obs.QueryTrace` in ``result.trace``.
        """
        if n_range is None:
            n_range = (1, self.dimensionality)
        selected = self.engine(engine)
        if not trace:
            return selected.frequent_k_n_match(
                query, k, n_range, keep_answer_sets=keep_answer_sets
            )
        started = time.perf_counter()
        result = selected.frequent_k_n_match(
            query, k, n_range, keep_answer_sets=keep_answer_sets
        )
        result.trace = self._build_trace(
            selected, "frequent_k_n_match", result.k, result.n_range,
            result.stats, started,
        )
        return result

    def _build_trace(self, selected, kind, k, n_range, stats, started):
        from ..obs import QueryTrace

        return QueryTrace.from_stats(
            engine=selected.name,
            kind=kind,
            k=k,
            n_range=n_range,
            stats=stats,
            wall_time_seconds=time.perf_counter() - started,
            dimensionality=self.dimensionality,
        )

    def k_n_match_batch(
        self,
        queries,
        k: int,
        n: int,
        engine: Optional[str] = None,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> "List[MatchResult]":
        """Run one k-n-match per row of ``queries``; results in query order.

        The sorted-column *build* is amortised across the batch (all
        engines share one build), but by default the queries themselves
        run serially, one engine call per row — except for engines with
        a native batch path (``"batch-block-ad"``), which execute the
        whole batch in one lock-step call.

        ``parallel=True`` (or passing ``workers``) instead shards the
        batch across a :class:`~repro.parallel.ParallelBatchExecutor`
        thread pool — an escape hatch for large batches on multi-core
        machines.  Answers are identical on every path.
        """
        # Validate everything up front (canonical order: k, n, queries)
        # so every engine — including an empty batch, where no per-query
        # call ever runs — rejects the same bad input the same way.
        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, self.cardinality, self.dimensionality
        )
        selected = self.engine(engine)
        executor = self._batch_executor(selected, parallel, workers)
        if executor is not None:
            return executor.k_n_match_batch(queries, k, n)
        native = getattr(selected, "k_n_match_batch", None)
        if native is not None:
            return native(queries, k, n)
        return [selected.k_n_match(query, k, n) for query in queries]

    def frequent_k_n_match_batch(
        self,
        queries,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> "List[FrequentMatchResult]":
        """Run one frequent k-n-match per row of ``queries``.

        Batch dispatch (native batch engines, the ``parallel=`` /
        ``workers=`` escape hatch) works exactly as in
        :meth:`k_n_match_batch`.
        """
        if n_range is None:
            n_range = (1, self.dimensionality)
        queries, k, n_range = validation.validate_batch_frequent_args(
            queries, k, n_range, self.cardinality, self.dimensionality
        )
        selected = self.engine(engine)
        executor = self._batch_executor(selected, parallel, workers)
        if executor is not None:
            return executor.frequent_k_n_match_batch(
                queries, k, n_range, keep_answer_sets=keep_answer_sets
            )
        native = getattr(selected, "frequent_k_n_match_batch", None)
        if native is not None:
            return native(queries, k, n_range, keep_answer_sets=keep_answer_sets)
        return [
            selected.frequent_k_n_match(
                query, k, n_range, keep_answer_sets=keep_answer_sets
            )
            for query in queries
        ]

    def _batch_executor(self, selected, parallel, workers):
        """The thread-pool executor for a batch call, or None for in-line.

        ``parallel=True`` opts in explicitly; passing ``workers`` alone
        implies it.  ``parallel=False`` always stays in-line.
        """
        use_parallel = bool(parallel) or (parallel is None and workers is not None)
        if not use_parallel:
            return None
        # Imported lazily: repro.parallel depends on this module.
        from ..parallel import ParallelBatchExecutor

        return ParallelBatchExecutor(
            selected, workers=workers, metrics=self._metrics,
            spans=self._spans,
        )

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MatchDatabase(cardinality={self.cardinality}, "
            f"dimensionality={self.dimensionality}, "
            f"default_engine={self._default_engine!r})"
        )
