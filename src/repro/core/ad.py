"""The AD (Ascending Difference) algorithm — the paper's core contribution.

Implements ``KNMatchAD`` (Fig. 4) and ``FKNMatchAD`` (Fig. 6) over the
sorted-column organisation: attributes are consumed in globally ascending
order of their difference to the query's attribute in the corresponding
dimension.  The first point id seen ``n`` times is the 1-n-match; the
algorithm stops once ``k`` ids have been seen ``n`` times (``n1`` times for
the frequent variant).

Correctness (Thm 3.1): the i-th point to reach ``n`` appearances has the
i-th smallest n-match difference.  Optimality (Thm 3.2/3.3): among all
algorithms that are correct on every dataset instance, AD retrieves the
fewest individual attributes.  The engine exposes exact counters so tests
can verify both claims empirically.

Answer-set semantics of the frequent variant: Definition 4 counts
frequencies over answer sets of size exactly ``k``; Fig. 6's literal
pseudo-code can leave more than ``k`` ids in ``S[n]`` for ``n < n1``
(points that complete ``n`` appearances after the k-th did).  Because ids
enter ``S[n]`` in ascending n-match-difference order, truncating each list
to its first ``k`` entries recovers Definition 4 exactly; pass
``truncate_answer_sets=False`` to reproduce the literal pseudo-code
instead.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple, Union

import numpy as np

from ..sorted_lists import AscendingDifferenceFrontier, SortedColumns, make_cursors
from . import validation
from .matchloop import run_frequent_k_n_match, run_k_n_match
from .types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency

__all__ = ["ADEngine"]


class ADEngine:
    """In-memory AD search over sorted columns.

    Accepts either a raw ``(c, d)`` array (sorted columns are built once
    at construction) or a prebuilt :class:`SortedColumns`, so the same
    substrate can be shared between engines.  An optional
    :class:`~repro.obs.MetricsRegistry` (``metrics=``) makes the engine
    record per-query counters, and an optional
    :class:`~repro.obs.SpanCollector` (``spans=``) records phase spans
    (``cursor_init`` / ``heap_consume`` / ``rank``); with neither
    installed the instrumentation path is a single ``is not None``
    branch per query and answers are identical.
    """

    name = "ad"

    def __init__(
        self,
        data: Union[np.ndarray, SortedColumns],
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        if isinstance(data, SortedColumns):
            self._columns = data
        else:
            self._columns = SortedColumns(data)
        self._metrics = metrics
        self._spans = spans

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def columns(self) -> SortedColumns:
        """The sorted-column substrate this engine searches."""
        return self._columns

    @property
    def data(self) -> np.ndarray:
        return self._columns.data

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    # ------------------------------------------------------------------
    # KNMatchAD (Fig. 4)
    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """Algorithm ``KNMatchAD``: the k-n-match set of ``query``.

        Returns ids in the order they complete ``n`` appearances, which by
        Thm 3.1 is ascending n-match-difference order; ``differences[i]``
        is the difference of the attribute whose pop completed the i-th
        answer, i.e. that answer's exact n-match difference.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        query, k, n = validation.validate_match_args(query, k, n, c, d)

        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            frontier = AscendingDifferenceFrontier(
                make_cursors(self._columns, query)
            )
            answer_ids, answer_differences = run_k_n_match(frontier, c, k, n)
        else:
            with spans.span(f"{self.name}/k_n_match", k=k, n=n):
                with spans.span("cursor_init", dimensions=d):
                    frontier = AscendingDifferenceFrontier(
                        make_cursors(self._columns, query)
                    )
                with spans.span("heap_consume"):
                    answer_ids, answer_differences = run_k_n_match(
                        frontier, c, k, n
                    )
                    spans.annotate(
                        heap_pops=frontier.pops,
                        attributes_retrieved=frontier.attributes_retrieved,
                    )
        stats = self._make_stats(frontier)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "k_n_match", stats,
                time.perf_counter() - started, d,
            )
        return MatchResult(
            ids=answer_ids, differences=answer_differences, k=k, n=n, stats=stats
        )

    # ------------------------------------------------------------------
    # FKNMatchAD (Fig. 6)
    # ------------------------------------------------------------------
    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
        truncate_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Algorithm ``FKNMatchAD``: the frequent k-n-match set.

        Runs the ascending-difference consumption until ``k`` ids have
        appeared ``n1`` times; at that moment every k-n-match answer set
        for ``n in [n0, n1]`` is already known (ids enter ``S[n]`` in
        ascending difference order), and the k most frequent ids across
        the (truncated) sets are returned.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        query, k, (n0, n1) = validation.validate_frequent_args(
            query, k, n_range, c, d
        )

        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            frontier = AscendingDifferenceFrontier(
                make_cursors(self._columns, query)
            )
            sets = run_frequent_k_n_match(frontier, c, k, n0, n1)
            if truncate_answer_sets:
                answer_sets = {n: ids[:k] for n, ids in sets.items()}
            else:
                answer_sets = sets
            chosen, frequencies = rank_by_frequency(answer_sets, k)
        else:
            with spans.span(
                f"{self.name}/frequent_k_n_match", k=k, n0=n0, n1=n1
            ):
                with spans.span("cursor_init", dimensions=d):
                    frontier = AscendingDifferenceFrontier(
                        make_cursors(self._columns, query)
                    )
                with spans.span("heap_consume"):
                    sets = run_frequent_k_n_match(frontier, c, k, n0, n1)
                    spans.annotate(
                        heap_pops=frontier.pops,
                        attributes_retrieved=frontier.attributes_retrieved,
                    )
                with spans.span("rank"):
                    if truncate_answer_sets:
                        answer_sets = {n: ids[:k] for n, ids in sets.items()}
                    else:
                        answer_sets = sets
                    chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = self._make_stats(frontier)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "frequent_k_n_match", stats,
                time.perf_counter() - started, d,
            )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _make_stats(self, frontier: AscendingDifferenceFrontier) -> SearchStats:
        d = self._columns.dimensionality
        return SearchStats(
            attributes_retrieved=frontier.attributes_retrieved,
            total_attributes=self._columns.total_attributes,
            heap_pops=frontier.pops,
            # one binary search per dimension to locate the query
            binary_search_probes=d,
        )
