"""Explaining a match: which dimensions agreed, and how closely.

The n-match difference doubles as the adaptive match threshold delta
(Sec. 1): a returned point matches the query in (at least) ``n``
dimensions within delta.  :func:`explain_match` recovers exactly that
story for one answer — the per-dimension differences, which dimensions
count as matching under the answer's own delta, and which dimensions
were the outliers the query chose to ignore.  Useful for showing *why*
an image/record was returned, the interpretability edge matching has
over an opaque aggregate distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from . import validation
from .distance import match_profile

__all__ = ["MatchExplanation", "explain_match"]


@dataclass(frozen=True)
class MatchExplanation:
    """Why one point is an n-match of the query."""

    point_id: int
    n: int
    delta: float  # the point's n-match difference
    differences: Tuple[float, ...]  # per-dimension |p_i - q_i|
    matching_dimensions: Tuple[int, ...]  # diff <= delta
    outlier_dimensions: Tuple[int, ...]  # diff > delta, largest first

    @property
    def match_count(self) -> int:
        return len(self.matching_dimensions)

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        """One-paragraph human-readable explanation."""
        d = len(self.differences)
        if names is None:
            names = [f"dim{i}" for i in range(d)]
        if len(names) != d:
            raise ValidationError(
                f"expected {d} dimension names; got {len(names)}"
            )
        matched = ", ".join(names[i] for i in self.matching_dimensions)
        lines = [
            f"point {self.point_id} matches the query in "
            f"{self.match_count} of {d} dimensions within "
            f"delta = {self.delta:.4g}: {matched}."
        ]
        if self.outlier_dimensions:
            worst = self.outlier_dimensions[0]
            lines.append(
                f"Ignored dimensions (largest first): "
                + ", ".join(
                    f"{names[i]} ({self.differences[i]:.4g})"
                    for i in self.outlier_dimensions
                )
                + f"; the worst, {names[worst]}, would have dominated an "
                f"aggregated distance."
            )
        return " ".join(lines)


def explain_match(data, query, point_id: int, n: int) -> MatchExplanation:
    """Explain why ``point_id`` is (or would be) an n-match of ``query``."""
    array = validation.as_database_array(data)
    c, d = array.shape
    if not 0 <= point_id < c:
        raise ValidationError(f"point id {point_id} out of range [0, {c})")
    n = validation.validate_n(n, d)
    query = validation.as_query_array(query, d)

    differences = np.abs(array[point_id] - query)
    delta = float(match_profile(array[point_id], query)[n - 1])
    matching = tuple(int(i) for i in np.flatnonzero(differences <= delta))
    outliers = tuple(
        int(i)
        for i in sorted(
            np.flatnonzero(differences > delta),
            key=lambda i: -differences[i],
        )
    )
    return MatchExplanation(
        point_id=point_id,
        n=n,
        delta=delta,
        differences=tuple(float(x) for x in differences),
        matching_dimensions=matching,
        outlier_dimensions=outliers,
    )
