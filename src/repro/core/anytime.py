"""Anytime (budgeted) k-n-match search.

In the multiple-system retrieval setting every sorted access is billed,
and a caller may not want to pay for the exact answer.  The AD
consumption order makes a principled *anytime* algorithm trivial:

* after any number of pops, the points that have completed ``n``
  appearances are exactly the best matches found so far, in true
  ascending n-match-difference order (Thm 3.1 applies to every prefix);
* any point that has NOT completed ``n`` appearances has an n-match
  difference of at least the next frontier difference — completing it
  needs one more attribute, and attributes arrive in ascending order.

So stopping after an attribute budget yields a verified prefix of the
exact answer plus a sound lower bound on everything unreturned.
:class:`AnytimeADEngine` packages that: run with ``attribute_budget``
and get an :class:`AnytimeResult` whose ``exact`` flag tells you whether
the budget sufficed and whose ``unseen_lower_bound`` certifies the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..errors import ValidationError
from ..sorted_lists import AscendingDifferenceFrontier, SortedColumns, make_cursors
from . import validation
from .types import SearchStats

__all__ = ["AnytimeADEngine", "AnytimeResult"]


@dataclass
class AnytimeResult:
    """Answer of a budgeted k-n-match run.

    ``ids``/``differences`` hold the verified prefix (possibly all k).
    ``exact`` is True when the prefix has length k — i.e. the budget was
    enough for the exact answer.  ``unseen_lower_bound`` is a certified
    lower bound on the n-match difference of every point *not* in
    ``ids`` (``None`` only when every attribute was consumed).
    """

    ids: List[int]
    differences: List[float]
    k: int
    n: int
    exact: bool
    unseen_lower_bound: Optional[float]
    stats: SearchStats = field(default_factory=SearchStats)
    trace: Optional[object] = None

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.differences))


class AnytimeADEngine:
    """AD search that stops at an attribute budget."""

    name = "anytime-ad"

    def __init__(self, data: Union[np.ndarray, SortedColumns]) -> None:
        if isinstance(data, SortedColumns):
            self._columns = data
        else:
            self._columns = SortedColumns(data)

    @property
    def columns(self) -> SortedColumns:
        return self._columns

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    def k_n_match(
        self, query, k: int, n: int, attribute_budget: Optional[int] = None
    ) -> AnytimeResult:
        """Budgeted k-n-match.

        ``attribute_budget`` caps the attributes retrieved (frontier
        fill included); ``None`` means unbounded, i.e. the exact AD run.
        The budget must allow at least the initial frontier fill
        (``2 * d`` attributes) to be meaningful; smaller budgets return
        an empty prefix with a trivial bound.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        k = validation.validate_k(k, c)
        n = validation.validate_n(n, d)
        query = validation.as_query_array(query, d)
        if attribute_budget is not None and attribute_budget < 0:
            raise ValidationError(
                f"attribute_budget must be >= 0; got {attribute_budget}"
            )

        frontier = AscendingDifferenceFrontier(make_cursors(self._columns, query))
        appear = np.zeros(c, dtype=np.int32)
        ids: List[int] = []
        differences: List[float] = []

        while len(ids) < k:
            if (
                attribute_budget is not None
                and frontier.attributes_retrieved >= attribute_budget
            ):
                break
            popped = frontier.pop()
            if popped is None:
                break
            pid, _slot, dif = popped
            appear[pid] += 1
            if appear[pid] == n:
                ids.append(pid)
                differences.append(dif)

        stats = SearchStats(
            attributes_retrieved=frontier.attributes_retrieved,
            total_attributes=self._columns.total_attributes,
            heap_pops=frontier.pops,
            binary_search_probes=d,
        )
        return AnytimeResult(
            ids=ids,
            differences=differences,
            k=k,
            n=n,
            exact=len(ids) == k,
            unseen_lower_bound=frontier.peek_difference(),
            stats=stats,
        )
