"""Exact cross-partition merging of k-n-match answers.

Shards partition the *point set* (every point lives in exactly one
shard), so per-shard answers can be merged into the exact global answer:
any point in the global k-n-match set has one of the ``k`` smallest
n-match differences overall, hence one of the ``min(k, |shard|)``
smallest within its own shard — the per-shard top-k lists together
always contain the global top-k.  The helpers here perform that merge
with the library's canonical deterministic tie-break (ascending n-match
difference, then ascending global point id — the naive oracle's order),
so merged answers are bit-identical to a single unsharded engine.

The same argument applies per ``n`` value of a frequent k-n-match query:
merge each per-``n`` answer set across shards *first*, then count
frequencies over the merged sets — Definition 4 counts appearances in
answer sets of size exactly ``k``, so frequency counting must happen
after the per-``n`` merge, never before (per-shard frequencies are
meaningless globally).  See ``docs/sharding.md`` for the worked
exactness argument.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .types import SearchStats

__all__ = ["merge_top_k", "merge_shard_stats"]


def merge_top_k(
    ids: np.ndarray, differences: np.ndarray, k: int
) -> Tuple[List[int], List[float]]:
    """The ``k`` best ``(difference, id)`` pairs in canonical order.

    ``ids`` and ``differences`` are aligned 1-D arrays — typically the
    concatenation of per-shard answer lists with ids already mapped to
    the global id space.  Returns ids and differences sorted by
    ascending difference, ties broken by ascending id (the naive
    oracle's order), truncated to ``k`` entries.

    For this to reproduce an unsharded engine bit-for-bit, each input
    list must itself be a superset of the global answers it can
    contribute (per-shard top-``min(k, |shard|)`` lists are — see the
    module docstring) and the differences must be computed with the same
    float64 arithmetic the serial engines use (``|data[pid] - query|``
    order statistics; same operands, same result, bit for bit).
    """
    ids = np.asarray(ids, dtype=np.int64)
    differences = np.asarray(differences, dtype=np.float64)
    order = np.lexsort((ids, differences))
    chosen = order[:k]
    return (
        [int(ids[i]) for i in chosen],
        [float(differences[i]) for i in chosen],
    )


def merge_shard_stats(
    stats: Sequence[SearchStats], total_attributes: int
) -> SearchStats:
    """Component-wise sum of per-shard stats with a global denominator.

    :meth:`SearchStats.merge` combines ``total_attributes`` with ``max``
    because it models two phases of one query on *one* database; shards
    are disjoint slices of one database, so here the denominator is the
    whole database's attribute count, supplied by the caller — the sum
    of the per-shard denominators, which the plain ``max`` would
    under-report.
    """
    merged = SearchStats.aggregate(stats)
    merged.total_attributes = int(total_attributes)
    return merged
