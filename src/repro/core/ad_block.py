"""Block-AD: a vectorised variant of the AD algorithm.

The reference :class:`~repro.core.ad.ADEngine` consumes attributes one at
a time through a heap, exactly like the paper's Fig. 4/6 — provably
optimal in attributes retrieved, but interpreter-bound in pure Python.
``BlockADEngine`` trades a *bounded* amount of extra attribute retrieval
for numpy speed:

1. Grow a symmetric difference threshold ``eps`` (exponentially) and, per
   dimension, take the whole window of attributes within ``eps`` of the
   query with two binary searches.
2. A point's n-match difference is ``<= eps`` iff it occurs in at least
   ``n`` of the windows (one ``np.bincount`` over the concatenated window
   ids), so stop growing once at least ``k`` points occur ``n1`` times.
3. Refine: fetch the full rows of the points occurring at least ``n0``
   times — every possible member of any answer set for ``n in [n0, n1]``
   has an n-match difference at most the k-th smallest n1-match
   difference, hence at least ``n0`` window hits — and compute their
   exact match profiles to build the per-n answer sets.

The answer is identical to the reference engine (same deterministic
tie-breaking as the naive oracle); only the access pattern differs.  The
windows consumed at the final ``eps`` are at most one doubling beyond what
strict AD would have consumed, so ``attributes_retrieved`` stays within a
small constant factor of optimal.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..sorted_lists import SortedColumns
from . import validation
from .types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency

__all__ = ["BlockADEngine"]


class BlockADEngine:
    """Vectorised epsilon-stepping AD search (see module docstring)."""

    name = "block-ad"

    #: bounds on the adaptive growth multiplier applied between rounds
    MIN_GROWTH = 1.25
    MAX_GROWTH = 4.0

    def __init__(
        self,
        data: Union[np.ndarray, SortedColumns],
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        if isinstance(data, SortedColumns):
            self._columns = data
        else:
            self._columns = SortedColumns(data)
        self._metrics = metrics
        self._spans = spans

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def columns(self) -> SortedColumns:
        return self._columns

    @property
    def data(self) -> np.ndarray:
        return self._columns.data

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """k-n-match via windows + exact refinement of the candidates."""
        c, d = self._columns.cardinality, self._columns.dimensionality
        query, k, n = validation.validate_match_args(query, k, n, c, d)
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            result = self._frequent_impl(query, k, n, n, keep_answer_sets=True)
            ids = result.answer_sets[n]
            data = self._columns.data
            differences = [
                float(np.partition(np.abs(data[pid] - query), n - 1)[n - 1])
                for pid in ids
            ]
        else:
            with spans.span(f"{self.name}/k_n_match", k=k, n=n):
                result = self._frequent_impl(
                    query, k, n, n, keep_answer_sets=True
                )
                with spans.span("finalize"):
                    ids = result.answer_sets[n]
                    data = self._columns.data
                    differences = [
                        float(
                            np.partition(np.abs(data[pid] - query), n - 1)[n - 1]
                        )
                        for pid in ids
                    ]
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "k_n_match", result.stats,
                time.perf_counter() - started, d,
            )
        return MatchResult(
            ids=list(ids), differences=differences, k=k, n=n, stats=result.stats
        )

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Frequent k-n-match with answer sets identical to the oracle."""
        c, d = self._columns.cardinality, self._columns.dimensionality
        query, k, (n0, n1) = validation.validate_frequent_args(
            query, k, n_range, c, d
        )
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            result = self._frequent_impl(
                query, k, n0, n1, keep_answer_sets=keep_answer_sets
            )
        else:
            with spans.span(
                f"{self.name}/frequent_k_n_match", k=k, n0=n0, n1=n1
            ):
                result = self._frequent_impl(
                    query, k, n0, n1, keep_answer_sets=keep_answer_sets
                )
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "frequent_k_n_match", result.stats,
                time.perf_counter() - started, d,
            )
        return result

    def _frequent_impl(
        self,
        query: np.ndarray,
        k: int,
        n0: int,
        n1: int,
        keep_answer_sets: bool,
    ) -> FrequentMatchResult:
        """The window-growth + refinement body (arguments pre-validated)."""
        c, d = self._columns.cardinality, self._columns.dimensionality
        spans = self._spans
        if spans is None:
            history, attributes, probes = self._grow_windows(query, k, n1)
        else:
            with spans.span("window_grow"):
                history, attributes, probes = self._grow_windows(query, k, n1)
                spans.annotate(
                    rounds=len(history), window_attributes=int(attributes)
                )

        # Candidate set: every point that can belong to the k-n-match set
        # of some n in [n0, n1].  A member's n-match difference is at
        # most the k-th smallest n-match difference, which is at most the
        # smallest tried eps at which k points matched in >= n windows —
        # so it must itself match in >= n windows at that eps.  Using the
        # earliest sufficient round per n keeps the candidate set tight
        # for small n, where the final (largest) eps would admit nearly
        # everything.
        if spans is None:
            candidates, profiles = self._refine(query, k, n0, n1, history, c)
        else:
            with spans.span("refine"):
                candidates, profiles = self._refine(
                    query, k, n0, n1, history, c
                )
                spans.annotate(candidates=int(candidates.shape[0]))

        if spans is None:
            answer_sets = self._answer_sets(candidates, profiles, k, n0, n1)
            chosen, frequencies = rank_by_frequency(answer_sets, k)
        else:
            with spans.span("rank"):
                answer_sets = self._answer_sets(
                    candidates, profiles, k, n0, n1
                )
                chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = SearchStats(
            attributes_retrieved=int(attributes + candidates.shape[0] * d),
            total_attributes=c * d,
            binary_search_probes=int(probes),
            candidates_refined=int(candidates.shape[0]),
        )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    def _refine(
        self,
        query: np.ndarray,
        k: int,
        n0: int,
        n1: int,
        history: List[np.ndarray],
        c: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate ids and their sorted exact difference profiles."""
        candidate_mask = np.zeros(c, dtype=bool)
        for n in range(n0, n1 + 1):
            for counts in history:
                if int(np.count_nonzero(counts >= n)) >= k:
                    candidate_mask |= counts >= n
                    break
            else:
                # Fewer than k points ever matched in >= n windows (only
                # possible when the whole database was consumed).
                candidate_mask[:] = True
        candidates = np.flatnonzero(candidate_mask)
        data = self._columns.data
        profiles = np.sort(np.abs(data[candidates] - query), axis=1)
        return candidates, profiles

    @staticmethod
    def _answer_sets(
        candidates: np.ndarray,
        profiles: np.ndarray,
        k: int,
        n0: int,
        n1: int,
    ) -> Dict[int, List[int]]:
        """Per-n answer sets from the refined profiles (oracle order)."""
        answer_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            column = profiles[:, n - 1]
            order = np.lexsort((candidates, column))
            answer_sets[n] = [int(candidates[i]) for i in order[:k]]
        return answer_sets

    # ------------------------------------------------------------------
    def _grow_windows(
        self, query: np.ndarray, k: int, n1: int
    ) -> Tuple[List[np.ndarray], int, int]:
        """Grow ``eps`` until >= k points match in >= n1 windows.

        Returns ``(per-round count history, attributes consumed at the
        final eps, binary-search probe count)``.  The history (counts at
        each tried eps, ascending) drives the per-n candidate pruning.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        # Hoist the per-dimension sorted arrays once per query: the views
        # are immutable for the lifetime of the build, and re-fetching
        # them every epsilon round is measurable on high-round queries.
        values = [self._columns.column_values(j) for j in range(d)]
        ids = [self._columns.column_ids(j) for j in range(d)]
        eps = self._initial_epsilon(query, k, n1, values)
        probes = d  # the locate_all pass inside _initial_epsilon
        history: List[np.ndarray] = []
        spans = self._spans
        while True:
            probes += 2 * d
            if spans is None:
                counts, attributes = self._window_counts(
                    query, eps, values, ids
                )
            else:
                with spans.span("round", eps=float(eps)):
                    counts, attributes = self._window_counts(
                        query, eps, values, ids
                    )
                    spans.annotate(window_attributes=int(attributes))
            history.append(counts)
            satisfied = int(np.count_nonzero(counts >= n1))
            if satisfied >= k:
                return history, attributes, probes
            if attributes >= c * d:
                # Whole database consumed; guaranteed to satisfy k <= c.
                return history, attributes, probes
            if eps <= 0:
                eps = self._smallest_positive(query, values)
                continue
            # Adaptive growth: the count of points matching in >= n1
            # dimensions scales roughly like eps^n1 locally, so the
            # deficit k/satisfied suggests the factor still needed.
            # Clamping keeps both round count and overshoot bounded.
            needed = (k / max(satisfied, 0.5)) ** (1.0 / n1)
            eps *= min(self.MAX_GROWTH, max(self.MIN_GROWTH, needed))

    def _window_counts(
        self,
        query: np.ndarray,
        eps: float,
        values: List[np.ndarray],
        ids: List[np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Per-point count of dimensions within ``eps`` (inclusive).

        ``values``/``ids`` are the hoisted per-dimension arrays; the
        ``attributes`` accounting (window sizes at this ``eps``) is
        unchanged by the hoist.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        counts = np.zeros(c, dtype=np.int64)
        attributes = 0
        for j in range(d):
            lo = np.searchsorted(values[j], query[j] - eps, side="left")
            hi = np.searchsorted(values[j], query[j] + eps, side="right")
            if hi > lo:
                np.add.at(counts, ids[j][lo:hi], 1)
                attributes += int(hi - lo)
        return counts, attributes

    def _initial_epsilon(
        self, query: np.ndarray, k: int, n1: int, values: List[np.ndarray]
    ) -> float:
        """A cheap starting threshold.

        Looks at the ``m``-th closest attribute per dimension where
        ``m * d`` roughly covers the ``k * n1`` window hits a successful
        round needs, and starts from the *smallest* such per-dimension
        difference so the first round under-shoots rather than
        over-shoots.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        m = min(c, max(1, -(-k * n1 // d)))  # ceil(k*n1/d)
        splits = self._columns.locate_all(query)
        best = np.inf
        for j in range(d):
            lo = max(0, splits[j] - m)
            hi = min(c, splits[j] + m)
            window = np.abs(values[j][lo:hi] - query[j])
            if window.size >= m:
                candidate = float(np.partition(window, m - 1)[m - 1])
            elif window.size:
                candidate = float(window.max())
            else:  # pragma: no cover - c >= 1 makes windows non-empty
                candidate = 0.0
            best = min(best, candidate)
        if np.isfinite(best) and best > 0:
            return best
        return self._smallest_positive(query, values)

    def _smallest_positive(
        self, query: np.ndarray, values: List[np.ndarray]
    ) -> float:
        """Fallback threshold when every nearest difference is zero."""
        d = self._columns.dimensionality
        smallest = np.inf
        for j in range(d):
            deltas = np.abs(values[j] - query[j])
            positive = deltas[deltas > 0]
            if positive.size:
                smallest = min(smallest, float(positive.min()))
        if not np.isfinite(smallest):
            # Entire database equals the query in every dimension.
            return 1.0
        return smallest
