"""Dynamic matching-based search: inserts and deletes.

The paper's engines assume a static, pre-sorted database.  A system a
downstream user would actually adopt needs updates, so
:class:`DynamicMatchDatabase` layers a classic two-tier design on top of
the static engines:

* a **base** segment — a static :class:`~repro.core.ad_block.BlockADEngine`
  over sorted columns, rebuilt only on compaction;
* a small **delta buffer** of freshly-inserted points, searched by brute
  force (it is tiny by construction);
* a **tombstone set** of deleted point ids, filtered out of base answers.

Queries are *exact* at every moment: the base engine is asked for enough
answers to survive tombstone filtering, the buffer's match profiles are
computed directly, and the two candidate streams merge under the same
deterministic (difference, id) order the static engines use.  When the
buffer or the tombstones outgrow ``compaction_threshold`` (a fraction of
the live size), the structure compacts: live rows are consolidated into
a new base segment and the sorted columns are rebuilt once.

Point ids are stable across compactions — they are assigned at insert
time and never reused.

The structure is **thread-safe**: one reentrant lock serialises updates
and queries, so it can sit behind the threaded HTTP server
(:mod:`repro.serve`) with writers racing readers.  Every mutation bumps
a monotonic :attr:`generation` counter, which the serving layer's
result cache keys on — a cached answer is valid exactly as long as the
generation it was computed under.

Like every other facade, ``metrics=`` installs a
:class:`~repro.obs.MetricsRegistry` (queries recorded under
``engine="dynamic"``) and ``spans=`` a
:class:`~repro.obs.SpanCollector` (roots ``dynamic/k_n_match`` /
``dynamic/frequent_k_n_match`` with ``base_search``, ``buffer_scan``
and ``merge`` phases).  The inner base engine stays uninstrumented so
logical query counters are not double-counted, mirroring the shard
layer's convention.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import EmptyDatabaseError, ValidationError
from . import validation
from .ad_block import BlockADEngine
from .types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency

__all__ = ["DynamicMatchDatabase"]


class DynamicMatchDatabase:
    """Exact k-n-match search over a mutable point set."""

    def __init__(
        self,
        data=None,
        dimensionality: Optional[int] = None,
        compaction_threshold: float = 0.25,
        min_buffer: int = 64,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        if data is None and dimensionality is None:
            raise ValidationError(
                "provide initial data or an explicit dimensionality"
            )
        if not 0 < compaction_threshold <= 1:
            raise ValidationError(
                f"compaction_threshold must be in (0, 1]; got {compaction_threshold}"
            )
        if min_buffer < 1:
            raise ValidationError(f"min_buffer must be >= 1; got {min_buffer}")
        self.compaction_threshold = compaction_threshold
        self.min_buffer = min_buffer

        if data is not None:
            array = validation.as_database_array(data)
            if dimensionality is not None and dimensionality != array.shape[1]:
                raise ValidationError(
                    f"dimensionality {dimensionality} does not match data's "
                    f"{array.shape[1]}"
                )
            self._dimensionality = array.shape[1]
            self._base = array
            self._base_pids = np.arange(array.shape[0], dtype=np.int64)
            self._next_pid = array.shape[0]
        else:
            self._dimensionality = int(dimensionality)
            if self._dimensionality < 1:
                raise ValidationError(
                    f"dimensionality must be >= 1; got {self._dimensionality}"
                )
            self._base = np.empty((0, self._dimensionality), dtype=np.float64)
            self._base_pids = np.empty(0, dtype=np.int64)
            self._next_pid = 0

        self._buffer_rows: List[np.ndarray] = []
        self._buffer_pids: List[int] = []
        self._tombstones: set = set()
        self._base_engine: Optional[BlockADEngine] = None
        self.compactions = 0
        self._metrics = metrics
        self._spans = spans
        self._generation = 0
        # Reentrant: insert -> _maybe_compact -> compact re-enters, and
        # insert_many loops over insert.
        self._lock = threading.RLock()

    @classmethod
    def from_snapshot(
        cls,
        rows,
        pids,
        generation: int = 0,
        **kwargs,
    ) -> "DynamicMatchDatabase":
        """Rebuild a database from a :meth:`snapshot`, resuming counters.

        ``generation`` must be at least the generation the snapshot was
        taken under — restart then resumes *past* it, so a serve-layer
        cache keyed on (generation, query) can never alias a pre-restart
        entry onto the rebuilt store.  Point ids resume after the
        largest snapshotted id, preserving the never-reused contract.
        """
        rows = np.asarray(rows, dtype=np.float64)
        pids = np.asarray(pids, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[0] != pids.shape[0]:
            raise ValidationError(
                f"snapshot rows {rows.shape} do not match {pids.shape[0]} pids"
            )
        if generation < 0:
            raise ValidationError(
                f"generation must be >= 0; got {generation}"
            )
        order = np.argsort(pids)
        pids = pids[order]
        if pids.shape[0] and np.any(np.diff(pids) <= 0):
            raise ValidationError("snapshot pids must be unique")
        db = cls(
            data=np.ascontiguousarray(rows[order]) if rows.shape[0] else None,
            dimensionality=rows.shape[1] if rows.ndim == 2 else None,
            **kwargs,
        )
        db._base_pids = pids
        db._next_pid = int(pids[-1]) + 1 if pids.shape[0] else 0
        # Resume one past the snapshot generation: the rebuilt store is a
        # distinct mutation epoch even before its first write.
        db._generation = int(generation) + 1
        return db

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; bumps on insert/delete/compact.

        Two queries observing the same generation see the same live
        point set, so any result computed at generation ``g`` may be
        replayed verbatim while :attr:`generation` still equals ``g`` —
        the invariant the :mod:`repro.serve` result cache relies on.
        """
        return self._generation

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    def set_metrics(self, registry) -> None:
        """Install (or remove, with ``None``) a metrics registry."""
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    def set_spans(self, collector) -> None:
        """Install (or remove, with ``None``) a span collector."""
        self._spans = collector

    @property
    def cardinality(self) -> int:
        """Number of live (non-deleted) points."""
        with self._lock:
            return (
                self._base.shape[0]
                + len(self._buffer_rows)
                - len(self._tombstones)
            )

    @property
    def buffer_size(self) -> int:
        return len(self._buffer_rows)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    def __len__(self) -> int:
        return self.cardinality

    def __contains__(self, pid: int) -> bool:
        with self._lock:
            if pid in self._tombstones:
                return False
            if pid in self._buffer_pids:
                return True
            position = np.searchsorted(self._base_pids, pid)
            return bool(
                position < self._base_pids.shape[0]
                and self._base_pids[position] == pid
            )

    def get_point(self, pid: int) -> np.ndarray:
        """The coordinates of a live point."""
        with self._lock:
            if pid in self._tombstones:
                raise ValidationError(f"point {pid} was deleted")
            if pid in self._buffer_pids:
                return self._buffer_rows[self._buffer_pids.index(pid)].copy()
            position = int(np.searchsorted(self._base_pids, pid))
            if (
                position < self._base_pids.shape[0]
                and self._base_pids[position] == pid
            ):
                return self._base[position].copy()
            raise ValidationError(f"unknown point id {pid}")

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """All live points as ``(rows, pids)``, base then buffer order."""
        with self._lock:
            rows = [self._base]
            pids = [self._base_pids]
            if self._buffer_rows:
                rows.append(np.vstack(self._buffer_rows))
                pids.append(np.asarray(self._buffer_pids, dtype=np.int64))
            all_rows = np.vstack(rows) if rows else self._base
            all_pids = np.concatenate(pids)
            if self._tombstones:
                live = ~np.isin(all_pids, list(self._tombstones))
                return all_rows[live], all_pids[live]
            return all_rows, all_pids

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Insert one point; returns its (stable) id."""
        coords = validation.as_query_array(point, self._dimensionality)
        with self._lock:
            pid = self._next_pid
            self._next_pid += 1
            self._buffer_rows.append(coords)
            self._buffer_pids.append(pid)
            self._generation += 1
            self._maybe_compact()
        return pid

    def insert_many(self, points) -> List[int]:
        """Insert several points; returns their ids."""
        array = validation.as_database_array(points)
        if array.shape[1] != self._dimensionality:
            raise ValidationError(
                f"points have {array.shape[1]} dimensions; expected "
                f"{self._dimensionality}"
            )
        with self._lock:
            return [self.insert(row) for row in array]

    def delete(self, pid: int) -> None:
        """Delete a live point by id."""
        with self._lock:
            if pid not in self:
                raise ValidationError(
                    f"point {pid} does not exist or was deleted"
                )
            self._tombstones.add(pid)
            self._generation += 1
            self._maybe_compact()

    def compact(self) -> None:
        """Consolidate live points into a fresh base segment."""
        with self._lock:
            rows, pids = self.snapshot()
            order = np.argsort(pids)
            self._base = np.ascontiguousarray(rows[order])
            self._base_pids = pids[order]
            self._buffer_rows = []
            self._buffer_pids = []
            self._tombstones = set()
            self._base_engine = None
            self.compactions += 1
            self._generation += 1

    def _maybe_compact(self) -> None:
        churn = len(self._buffer_rows) + len(self._tombstones)
        threshold = max(
            self.min_buffer, int(self.compaction_threshold * max(1, self.cardinality))
        )
        if churn > threshold:
            self.compact()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """Exact k-n-match over the live points."""
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        with self._lock:
            if self.cardinality == 0:
                raise EmptyDatabaseError("no live points to search")
            k = validation.validate_k(k, self.cardinality)
            n = validation.validate_n(n, self._dimensionality)
            query = validation.as_query_array(query, self._dimensionality)

            if spans is None:
                candidates, stats = self._candidates(query, k, (n, n))
                merged = sorted(candidates[n])[:k]
            else:
                with spans.span("dynamic/k_n_match", k=k, n=n):
                    candidates, stats = self._candidates(query, k, (n, n))
                    with spans.span("merge"):
                        merged = sorted(candidates[n])[:k]
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, "dynamic", "k_n_match", stats,
                time.perf_counter() - started, self._dimensionality,
            )
        return MatchResult(
            ids=[pid for _diff, pid in merged],
            differences=[diff for diff, _pid in merged],
            k=k,
            n=n,
            stats=stats,
        )

    def frequent_k_n_match(
        self, query, k: int, n_range: Tuple[int, int], keep_answer_sets: bool = True
    ) -> FrequentMatchResult:
        """Exact frequent k-n-match over the live points."""
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        with self._lock:
            if self.cardinality == 0:
                raise EmptyDatabaseError("no live points to search")
            k = validation.validate_k(k, self.cardinality)
            n0, n1 = validation.validate_n_range(n_range, self._dimensionality)
            query = validation.as_query_array(query, self._dimensionality)

            if spans is None:
                candidates, stats = self._candidates(query, k, (n0, n1))
                answer_sets = self._answer_sets(candidates, k, n0, n1)
            else:
                with spans.span(
                    "dynamic/frequent_k_n_match", k=k, n0=n0, n1=n1
                ):
                    candidates, stats = self._candidates(query, k, (n0, n1))
                    with spans.span("merge"):
                        answer_sets = self._answer_sets(candidates, k, n0, n1)
        chosen, frequencies = rank_by_frequency(answer_sets, k)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, "dynamic", "frequent_k_n_match", stats,
                time.perf_counter() - started, self._dimensionality,
            )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    @staticmethod
    def _answer_sets(candidates, k: int, n0: int, n1: int) -> Dict[int, List[int]]:
        answer_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            merged = sorted(candidates[n])[:k]
            answer_sets[n] = [pid for _diff, pid in merged]
        return answer_sets

    # ------------------------------------------------------------------
    def _candidates(
        self, query: np.ndarray, k: int, n_range: Tuple[int, int]
    ) -> Tuple[Dict[int, List[Tuple[float, int]]], SearchStats]:
        """Per-n candidate (difference, pid) lists from base + buffer."""
        n0, n1 = n_range
        per_n: Dict[int, List[Tuple[float, int]]] = {
            n: [] for n in range(n0, n1 + 1)
        }
        stats = SearchStats(
            total_attributes=self.cardinality * self._dimensionality
        )

        # Base segment through the static engine, over-fetching enough to
        # survive tombstone filtering.
        spans = self._spans
        if self._base.shape[0]:
            if spans is None:
                stats = self._base_candidates(query, k, n0, n1, per_n, stats)
            else:
                with spans.span("base_search"):
                    stats = self._base_candidates(
                        query, k, n0, n1, per_n, stats
                    )

        # Delta buffer by brute force.
        if spans is None:
            self._buffer_candidates(query, n0, n1, per_n, stats)
        else:
            with spans.span("buffer_scan", buffered=len(self._buffer_rows)):
                self._buffer_candidates(query, n0, n1, per_n, stats)
        return per_n, stats

    def _base_candidates(self, query, k, n0, n1, per_n, stats) -> SearchStats:
        base_k = min(self._base.shape[0], k + len(self._tombstones))
        engine = self._engine()
        result = engine.frequent_k_n_match(
            query, base_k, (n0, n1), keep_answer_sets=True
        )
        stats = stats.merge(result.stats)
        profiles_cache: Dict[int, np.ndarray] = {}
        for n, rows in result.answer_sets.items():
            for row_index in rows:
                pid = int(self._base_pids[row_index])
                if pid in self._tombstones:
                    continue
                if row_index not in profiles_cache:
                    profiles_cache[row_index] = np.sort(
                        np.abs(self._base[row_index] - query)
                    )
                per_n[n].append(
                    (float(profiles_cache[row_index][n - 1]), pid)
                )
        return stats

    def _buffer_candidates(self, query, n0, n1, per_n, stats) -> None:
        for coords, pid in zip(self._buffer_rows, self._buffer_pids):
            if pid in self._tombstones:
                continue
            profile = np.sort(np.abs(coords - query))
            stats.attributes_retrieved += self._dimensionality
            for n in range(n0, n1 + 1):
                per_n[n].append((float(profile[n - 1]), pid))

    def _engine(self) -> BlockADEngine:
        if self._base_engine is None:
            self._base_engine = BlockADEngine(self._base)
        return self._base_engine
