"""Core of the reproduction: the k-n-match problem and its engines."""

from .ad import ADEngine
from .ad_block import BlockADEngine
from .distance import (
    chebyshev_distance,
    dpf_distance,
    euclidean_distance,
    manhattan_distance,
    match_count_within,
    match_profile,
    minkowski_distance,
    n_match_difference,
    n_match_differences,
)
from .dynamic import DynamicMatchDatabase
from .engine import ENGINE_NAMES, MatchDatabase, validate_engine_name
from .merge import merge_shard_stats, merge_top_k
from .mixed import CATEGORICAL, NUMERIC, MixedMatchDatabase, Schema
from .advisor import (
    CostEstimate,
    EngineAdvice,
    estimate_fraction_retrieved,
    recommend_engine,
)
from .anytime import AnytimeADEngine, AnytimeResult
from .explain import MatchExplanation, explain_match
from .weighted import WeightedMatchDatabase
from .naive import NaiveScanEngine, naive_frequent_k_n_match, naive_k_n_match
from .types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency

__all__ = [
    "ADEngine",
    "BlockADEngine",
    "NaiveScanEngine",
    "MatchDatabase",
    "DynamicMatchDatabase",
    "MixedMatchDatabase",
    "WeightedMatchDatabase",
    "AnytimeADEngine",
    "AnytimeResult",
    "MatchExplanation",
    "explain_match",
    "CostEstimate",
    "EngineAdvice",
    "estimate_fraction_retrieved",
    "recommend_engine",
    "Schema",
    "NUMERIC",
    "CATEGORICAL",
    "ENGINE_NAMES",
    "validate_engine_name",
    "merge_top_k",
    "merge_shard_stats",
    "MatchResult",
    "FrequentMatchResult",
    "SearchStats",
    "rank_by_frequency",
    "n_match_difference",
    "n_match_differences",
    "match_profile",
    "match_count_within",
    "minkowski_distance",
    "euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "dpf_distance",
    "naive_k_n_match",
    "naive_frequent_k_n_match",
]
