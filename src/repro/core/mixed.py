"""Matching over mixed numeric and categorical attributes.

Footnote 1 of the paper (Sec. 2.1): "A side effect of our work will be
that we can have a uniform treatment for both type[s] of attributes in
the future."  The n-match difference makes that natural: a categorical
dimension contributes a difference of 0 on an exact match and a fixed
mismatch cost otherwise (Hamming-style, the measure the paper cites
[15]), a numeric dimension contributes ``|p_i - q_i|``, and the n-match
machinery — order statistics, adaptive delta, frequent voting — applies
unchanged.

:class:`MixedMatchDatabase` implements that uniform treatment:

* a :class:`Schema` declares each dimension numeric or categorical;
* categorical values (any hashable: strings, ints...) are dictionary-
  encoded at build time;
* queries are validated against the schema; unseen categorical values
  are legal — they simply mismatch every stored value;
* answers follow the same deterministic (difference, id) order as the
  numeric engines.

With ``mismatch_cost=1`` on every categorical dimension and data
normalised to [0, 1], a categorical mismatch weighs like a maximal
numeric disagreement, which is the Hamming reading; per-dimension costs
let domain knowledge say otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from . import validation
from .types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency

__all__ = ["Schema", "MixedMatchDatabase", "NUMERIC", "CATEGORICAL"]

NUMERIC = "numeric"
CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Schema:
    """Per-dimension declaration of a mixed database.

    ``kinds[i]`` is :data:`NUMERIC` or :data:`CATEGORICAL`;
    ``mismatch_costs[i]`` is the difference contributed by a categorical
    mismatch (ignored for numeric dimensions).  ``names`` are optional
    labels used in error messages.
    """

    kinds: Tuple[str, ...]
    mismatch_costs: Tuple[float, ...] = ()
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ValidationError("schema needs at least one dimension")
        for kind in self.kinds:
            if kind not in (NUMERIC, CATEGORICAL):
                raise ValidationError(
                    f"unknown dimension kind {kind!r}; use "
                    f"{NUMERIC!r} or {CATEGORICAL!r}"
                )
        if self.mismatch_costs:
            if len(self.mismatch_costs) != len(self.kinds):
                raise ValidationError(
                    "mismatch_costs must match the number of dimensions"
                )
            for cost in self.mismatch_costs:
                if not cost > 0:
                    raise ValidationError(
                        f"mismatch costs must be positive; got {cost}"
                    )
        else:
            object.__setattr__(
                self, "mismatch_costs", tuple(1.0 for _ in self.kinds)
            )
        if self.names:
            if len(self.names) != len(self.kinds):
                raise ValidationError("names must match the number of dimensions")
        else:
            object.__setattr__(
                self,
                "names",
                tuple(f"dim{i}" for i in range(len(self.kinds))),
            )

    @classmethod
    def of(cls, *kinds: str, mismatch_costs: Sequence[float] = (), names: Sequence[str] = ()) -> "Schema":
        return cls(tuple(kinds), tuple(mismatch_costs), tuple(names))

    @property
    def dimensionality(self) -> int:
        return len(self.kinds)

    @property
    def numeric_dimensions(self) -> List[int]:
        return [i for i, kind in enumerate(self.kinds) if kind == NUMERIC]

    @property
    def categorical_dimensions(self) -> List[int]:
        return [i for i, kind in enumerate(self.kinds) if kind == CATEGORICAL]


class MixedMatchDatabase:
    """k-n-match and frequent k-n-match over mixed-type records."""

    def __init__(self, records: Sequence[Sequence], schema: Schema) -> None:
        if not isinstance(schema, Schema):
            raise ValidationError("schema must be a Schema instance")
        self.schema = schema
        records = list(records)
        if not records:
            raise ValidationError("at least one record is required")
        d = schema.dimensionality
        for index, record in enumerate(records):
            if len(record) != d:
                raise ValidationError(
                    f"record {index} has {len(record)} fields; schema has {d}"
                )

        self._cardinality = len(records)
        numeric_dims = schema.numeric_dimensions
        categorical_dims = schema.categorical_dimensions

        numeric_values = np.empty((self._cardinality, len(numeric_dims)))
        for column, dim in enumerate(numeric_dims):
            try:
                numeric_values[:, column] = [float(r[dim]) for r in records]
            except (TypeError, ValueError):
                raise ValidationError(
                    f"dimension {schema.names[dim]!r} is numeric but holds "
                    f"non-numeric values"
                ) from None
        if numeric_values.size and not np.isfinite(numeric_values).all():
            raise ValidationError("numeric attributes must be finite")
        self._numeric = numeric_values
        self._numeric_dims = numeric_dims

        self._encoders: Dict[int, Dict[Hashable, int]] = {}
        codes = np.empty((self._cardinality, len(categorical_dims)), dtype=np.int64)
        for column, dim in enumerate(categorical_dims):
            encoder: Dict[Hashable, int] = {}
            for row, record in enumerate(records):
                value = record[dim]
                try:
                    code = encoder.setdefault(value, len(encoder))
                except TypeError:
                    raise ValidationError(
                        f"dimension {schema.names[dim]!r} holds an unhashable "
                        f"value {value!r}"
                    ) from None
                codes[row, column] = code
            self._encoders[dim] = encoder
        self._codes = codes
        self._categorical_dims = categorical_dims
        self._costs = np.asarray(
            [schema.mismatch_costs[dim] for dim in categorical_dims]
        )

    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        return self.schema.dimensionality

    def __len__(self) -> int:
        return self._cardinality

    def categories(self, dimension: int) -> List[Hashable]:
        """Distinct values seen in one categorical dimension."""
        if dimension not in self._encoders:
            raise ValidationError(
                f"dimension {dimension} is not categorical"
            )
        return list(self._encoders[dimension])

    # ------------------------------------------------------------------
    def difference_matrix(self, query: Sequence) -> np.ndarray:
        """Per-(point, dimension) differences of every record vs query.

        Numeric: ``|value - query|``.  Categorical: 0 on match, the
        dimension's mismatch cost otherwise.  Column order follows the
        schema.
        """
        query = self._validate_query(query)
        out = np.empty((self._cardinality, self.dimensionality))
        if self._numeric_dims:
            numeric_query = np.asarray(
                [float(query[dim]) for dim in self._numeric_dims]
            )
            numeric_deltas = np.abs(self._numeric - numeric_query)
            for column, dim in enumerate(self._numeric_dims):
                out[:, dim] = numeric_deltas[:, column]
        for column, dim in enumerate(self._categorical_dims):
            code = self._encoders[dim].get(query[dim], -1)
            mismatch = self._codes[:, column] != code
            out[:, dim] = np.where(mismatch, self._costs[column], 0.0)
        return out

    def k_n_match(self, query: Sequence, k: int, n: int) -> MatchResult:
        """The k-n-match set under the mixed difference."""
        k = validation.validate_k(k, self._cardinality)
        n = validation.validate_n(n, self.dimensionality)
        deltas = self.difference_matrix(query)
        differences = np.partition(deltas, n - 1, axis=1)[:, n - 1]
        order = np.lexsort((np.arange(self._cardinality), differences))[:k]
        stats = SearchStats(
            attributes_retrieved=self._cardinality * self.dimensionality,
            total_attributes=self._cardinality * self.dimensionality,
            points_scanned=self._cardinality,
        )
        return MatchResult(
            ids=[int(i) for i in order],
            differences=[float(differences[i]) for i in order],
            k=k,
            n=n,
            stats=stats,
        )

    def frequent_k_n_match(
        self,
        query: Sequence,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Frequent k-n-match under the mixed difference."""
        k = validation.validate_k(k, self._cardinality)
        n0, n1 = validation.validate_n_range(n_range, self.dimensionality)
        profiles = np.sort(self.difference_matrix(query), axis=1)
        ids = np.arange(self._cardinality)
        answer_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            order = np.lexsort((ids, profiles[:, n - 1]))
            answer_sets[n] = [int(i) for i in order[:k]]
        chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = SearchStats(
            attributes_retrieved=self._cardinality * self.dimensionality,
            total_attributes=self._cardinality * self.dimensionality,
            points_scanned=self._cardinality,
        )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _validate_query(self, query: Sequence) -> Sequence:
        if len(query) != self.dimensionality:
            raise ValidationError(
                f"query has {len(query)} fields; schema has "
                f"{self.dimensionality}"
            )
        for dim in self._numeric_dims:
            try:
                value = float(query[dim])
            except (TypeError, ValueError):
                raise ValidationError(
                    f"query field {self.schema.names[dim]!r} must be numeric"
                ) from None
            if not np.isfinite(value):
                raise ValidationError(
                    f"query field {self.schema.names[dim]!r} must be finite"
                )
        return query
