"""Weighted k-n-match: per-dimension importance.

A natural extension of the paper's model: scale the difference in each
dimension by a positive weight before taking order statistics, so that a
close match in an important dimension counts more than one in a noisy
dimension.  For positive weights this is exact and free —

    w_i * |p_i - q_i|  ==  |w_i * p_i - w_i * q_i|

— so :class:`WeightedMatchDatabase` simply scales the data once at build
time, scales each query at query time, and delegates to the ordinary
:class:`~repro.core.engine.MatchDatabase`.  Every engine, theorem and
counter applies unchanged; reported differences are in the *weighted*
space (a returned difference of d means the matching dimensions agree
within d / w_i each).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError
from . import validation
from .engine import MatchDatabase
from .types import FrequentMatchResult, MatchResult

__all__ = ["WeightedMatchDatabase"]


class WeightedMatchDatabase:
    """k-n-match with per-dimension difference weights."""

    def __init__(self, data, weights, default_engine: str = "ad") -> None:
        array = validation.as_database_array(data)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.shape[0] != array.shape[1]:
            raise ValidationError(
                f"weights must be a 1-D array of length {array.shape[1]}; "
                f"got shape {weights.shape}"
            )
        if not np.isfinite(weights).all() or np.any(weights <= 0):
            raise ValidationError("weights must be positive and finite")
        self.weights = weights
        self._db = MatchDatabase(array * weights, default_engine=default_engine)
        self._raw = array

    @property
    def data(self) -> np.ndarray:
        """The original (unscaled) data."""
        return self._raw

    @property
    def cardinality(self) -> int:
        return self._db.cardinality

    @property
    def dimensionality(self) -> int:
        return self._db.dimensionality

    def __len__(self) -> int:
        return self.cardinality

    def _scale_query(self, query) -> np.ndarray:
        query = validation.as_query_array(query, self.dimensionality)
        return query * self.weights

    def k_n_match(
        self, query, k: int, n: int, engine: Optional[str] = None
    ) -> MatchResult:
        """k-n-match under weighted differences.

        ``differences`` come back in the weighted space; ids identify
        rows of the original data.
        """
        return self._db.k_n_match(self._scale_query(query), k, n, engine=engine)

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Optional[Tuple[int, int]] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Frequent k-n-match under weighted differences."""
        return self._db.frequent_k_n_match(
            self._scale_query(query),
            k,
            n_range,
            engine=engine,
            keep_answer_sets=keep_answer_sets,
        )
