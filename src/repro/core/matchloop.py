"""The engine-independent consumption loop of the AD algorithm.

Both the in-memory AD engine (Fig. 4/6 over in-memory sorted columns) and
the disk AD engine (Sec. 4.1 over paged column files) consume attributes
from an ascending-difference frontier and watch appearance counts.  The
loop itself is identical; only the frontier differs.  Keeping it here in
one place guarantees the two engines implement the same algorithm.

A *frontier* is any object with ``pop() -> (pid, slot, diff) | None``
yielding attributes in globally ascending difference order.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Tuple

import numpy as np

__all__ = ["Frontier", "run_k_n_match", "run_frequent_k_n_match"]


class Frontier(Protocol):
    """Structural type of an ascending-difference attribute source."""

    def pop(self) -> "Tuple[int, int, float] | None":  # pragma: no cover
        ...


def run_k_n_match(
    frontier: Frontier, cardinality: int, k: int, n: int
) -> Tuple[List[int], List[float]]:
    """Algorithm ``KNMatchAD`` body (Fig. 4, lines 5-12).

    Pops attributes until ``k`` point ids have been seen ``n`` times.
    Returns ids in completion order — by Thm 3.1 that is ascending
    n-match-difference order — together with their exact differences
    (the difference of the pop that completed each id).
    """
    appear = np.zeros(cardinality, dtype=np.int32)
    ids: List[int] = []
    differences: List[float] = []
    while len(ids) < k:
        popped = frontier.pop()
        if popped is None:  # all attributes consumed; k <= c prevents this
            break  # pragma: no cover
        pid, _slot, dif = popped
        appear[pid] += 1
        if appear[pid] == n:
            ids.append(pid)
            differences.append(dif)
    return ids, differences


def run_frequent_k_n_match(
    frontier: Frontier, cardinality: int, k: int, n0: int, n1: int
) -> Dict[int, List[int]]:
    """Algorithm ``FKNMatchAD`` body (Fig. 6, lines 5-11).

    Pops attributes until ``k`` ids have been seen ``n1`` times; on the
    way, records ``S[n]`` — ids in the order they complete ``n``
    appearances — for every ``n`` in ``[n0, n1]``.  By the time the loop
    ends every ``S[n]`` holds (a superset of) the k-n-match answer set in
    ascending difference order; the caller truncates to ``k`` per
    Definition 4.
    """
    appear = np.zeros(cardinality, dtype=np.int32)
    sets: Dict[int, List[int]] = {n: [] for n in range(n0, n1 + 1)}
    completed = 0
    while completed < k:
        popped = frontier.pop()
        if popped is None:
            break  # pragma: no cover
        pid, _slot, _dif = popped
        appear[pid] += 1
        count = int(appear[pid])
        if n0 <= count <= n1:
            sets[count].append(pid)
            if count == n1:
                completed += 1
    return sets
