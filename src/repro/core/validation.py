"""Argument validation shared by every public entry point.

The rules encode the paper's problem statements: a database is a set of
``c`` points in ``d`` dimensions (Table 1), ``1 <= n <= d`` (Def. 2),
``1 <= k <= c`` (Def. 3) and ``[n0, n1]`` must lie within ``[1, d]``
(Def. 4).  Everything is validated eagerly with precise error messages so
that misuse fails at the API boundary, not deep inside an engine.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import (
    DimensionalityMismatchError,
    EmptyDatabaseError,
    ValidationError,
)


def as_database_array(data) -> np.ndarray:
    """Coerce ``data`` to a 2-D, finite, float64 C-contiguous array.

    Raises :class:`ValidationError` for wrong rank, emptiness or
    non-finite values.  A copy is made only when required by the dtype or
    layout conversion.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValidationError(
            f"database must be a 2-D array of shape (cardinality, "
            f"dimensionality); got ndim={array.ndim}"
        )
    if array.shape[0] == 0:
        raise EmptyDatabaseError("database has no points")
    if array.shape[1] == 0:
        raise ValidationError("database has zero dimensions")
    if not np.isfinite(array).all():
        raise ValidationError("database contains NaN or infinite values")
    return np.ascontiguousarray(array)


def as_query_array(query, dimensionality: int) -> np.ndarray:
    """Coerce ``query`` to a finite 1-D float64 array of the right length."""
    array = np.asarray(query, dtype=np.float64)
    if array.ndim != 1:
        raise ValidationError(
            f"query must be a 1-D array; got ndim={array.ndim}"
        )
    if array.shape[0] != dimensionality:
        raise DimensionalityMismatchError(dimensionality, array.shape[0])
    if not np.isfinite(array).all():
        raise ValidationError("query contains NaN or infinite values")
    return array


def as_query_batch(queries, dimensionality: int) -> np.ndarray:
    """Coerce ``queries`` to a finite 2-D float64 array of width ``d``.

    A batch may be empty (zero rows); each row is one query.  The width
    must match the database dimensionality even for an empty batch — a
    degenerate batch is validated exactly like a full one.
    """
    array = np.asarray(queries, dtype=np.float64)
    if array.ndim != 2:
        raise ValidationError(
            f"queries must be a 2-D array (one row each); got ndim={array.ndim}"
        )
    if array.shape[1] != dimensionality:
        raise DimensionalityMismatchError(dimensionality, array.shape[1])
    if not np.isfinite(array).all():
        raise ValidationError("queries contain NaN or infinite values")
    return np.ascontiguousarray(array)


def validate_k(k: int, cardinality: int) -> int:
    """Check ``1 <= k <= cardinality`` and return ``k`` as an int."""
    k = _as_int("k", k)
    if k < 1:
        raise ValidationError(f"k must be >= 1; got {k}")
    if k > cardinality:
        raise ValidationError(
            f"k={k} exceeds the database cardinality {cardinality}"
        )
    return k


def validate_n(n: int, dimensionality: int) -> int:
    """Check ``1 <= n <= dimensionality`` and return ``n`` as an int."""
    n = _as_int("n", n)
    if not 1 <= n <= dimensionality:
        raise ValidationError(
            f"n must be within [1, {dimensionality}]; got {n}"
        )
    return n


def validate_n_range(
    n_range: Tuple[int, int], dimensionality: int
) -> Tuple[int, int]:
    """Check ``1 <= n0 <= n1 <= dimensionality`` for a frequent query."""
    try:
        n0, n1 = n_range
    except (TypeError, ValueError):
        raise ValidationError(
            f"n_range must be a (n0, n1) pair; got {n_range!r}"
        ) from None
    n0 = validate_n(n0, dimensionality)
    n1 = validate_n(n1, dimensionality)
    if n0 > n1:
        raise ValidationError(f"n_range requires n0 <= n1; got ({n0}, {n1})")
    return n0, n1


def validate_match_args(query, k, n, cardinality: int, dimensionality: int):
    """Validate a k-n-match call in the one canonical order.

    Every engine funnels through here so that the same bad input raises
    the same :class:`ValidationError` everywhere: ``k`` first, then
    ``n``, then the query vector.  Returns ``(query, k, n)`` coerced.
    """
    k = validate_k(k, cardinality)
    n = validate_n(n, dimensionality)
    query = as_query_array(query, dimensionality)
    return query, k, n


def validate_frequent_args(
    query, k, n_range, cardinality: int, dimensionality: int
):
    """Validate a frequent k-n-match call in the canonical order.

    Returns ``(query, k, (n0, n1))`` coerced; ordering matches
    :func:`validate_match_args` (``k``, then the range, then the query).
    """
    k = validate_k(k, cardinality)
    n0, n1 = validate_n_range(n_range, dimensionality)
    query = as_query_array(query, dimensionality)
    return query, k, (n0, n1)


def validate_batch_match_args(
    queries, k, n, cardinality: int, dimensionality: int
):
    """Validate a batch k-n-match call (canonical order, batch query).

    ``k``/``n`` are checked even when the batch is empty, so a zero-row
    batch with invalid parameters raises instead of silently returning
    ``[]`` on some engines and raising on others.
    """
    k = validate_k(k, cardinality)
    n = validate_n(n, dimensionality)
    queries = as_query_batch(queries, dimensionality)
    return queries, k, n


def validate_batch_frequent_args(
    queries, k, n_range, cardinality: int, dimensionality: int
):
    """Validate a batch frequent k-n-match call (canonical order)."""
    k = validate_k(k, cardinality)
    n0, n1 = validate_n_range(n_range, dimensionality)
    queries = as_query_batch(queries, dimensionality)
    return queries, k, (n0, n1)


def _as_int(name: str, value) -> int:
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer; got a bool")
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ValidationError(f"{name} must be an integer; got {value!r}")
