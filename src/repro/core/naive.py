"""Naive (full scan) algorithms for k-n-match and frequent k-n-match.

This is the baseline the paper describes at the start of Sec. 3: "compute
the n-match difference of every point and return the top k answers"; for
the frequent variant, "maintain a top k answer set for each n value
required by the query while checking every point".  Every attribute of
every point is retrieved, which is exactly what the AD algorithm avoids.

Besides serving as the scan baseline of the efficiency study, this engine
is the *correctness oracle* for every other engine in the test suite: it
is a direct, vectorised transcription of Definitions 1-4 with fully
deterministic tie-breaking (ascending difference, then ascending id).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import validation
from .types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency

__all__ = ["NaiveScanEngine", "naive_k_n_match", "naive_frequent_k_n_match"]


class NaiveScanEngine:
    """Full-scan engine over an in-memory ``(c, d)`` array."""

    name = "naive-scan"

    def __init__(
        self,
        data,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        self._data = validation.as_database_array(data)
        self._metrics = metrics
        self._spans = spans

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def data(self) -> np.ndarray:
        """The underlying ``(cardinality, dimensionality)`` array."""
        return self._data

    @property
    def cardinality(self) -> int:
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._data.shape[1]

    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """Scan every point; return the k smallest n-match differences.

        Ties on the n-match difference are broken by ascending point id,
        making the answer set unique and reproducible.
        """
        c, d = self._data.shape
        query, k, n = validation.validate_match_args(query, k, n, c, d)

        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            differences, chosen = self._scan(query, k, n, c)
        else:
            with spans.span(f"{self.name}/k_n_match", k=k, n=n):
                differences, chosen = self._scan(query, k, n, c)
                spans.annotate(points_scanned=c)
        stats = SearchStats(
            attributes_retrieved=c * d,
            total_attributes=c * d,
            points_scanned=c,
        )
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "k_n_match", stats,
                time.perf_counter() - started, d,
            )
        return MatchResult(
            ids=[int(i) for i in chosen],
            differences=[float(differences[i]) for i in chosen],
            k=k,
            n=n,
            stats=stats,
        )

    def _scan(self, query, k: int, n: int, c: int):
        """The full-scan body: every point's n-match difference, top k."""
        deltas = np.abs(self._data - query)
        differences = np.partition(deltas, n - 1, axis=1)[:, n - 1]
        order = np.lexsort((np.arange(c), differences))
        return differences, order[:k]

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Scan once, keep a top-k answer set per n in ``n_range``.

        The per-point *match profile* (all d order statistics of the
        differences) is computed with one sort per point; column ``n-1``
        then holds every point's n-match difference.
        """
        c, d = self._data.shape
        query, k, (n0, n1) = validation.validate_frequent_args(
            query, k, n_range, c, d
        )

        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            answer_sets = self._scan_frequent(query, k, n0, n1, c)
            chosen, frequencies = rank_by_frequency(answer_sets, k)
        else:
            with spans.span(
                f"{self.name}/frequent_k_n_match", k=k, n0=n0, n1=n1
            ):
                answer_sets = self._scan_frequent(query, k, n0, n1, c)
                with spans.span("rank"):
                    chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = SearchStats(
            attributes_retrieved=c * d,
            total_attributes=c * d,
            points_scanned=c,
        )
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "frequent_k_n_match", stats,
                time.perf_counter() - started, d,
            )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    def _scan_frequent(
        self, query, k: int, n0: int, n1: int, c: int
    ) -> Dict[int, List[int]]:
        """One scan of the match profiles; a top-k answer set per n."""
        profiles = np.sort(np.abs(self._data - query), axis=1)
        ids = np.arange(c)
        answer_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            column = profiles[:, n - 1]
            order = np.lexsort((ids, column))
            answer_sets[n] = [int(i) for i in order[:k]]
        return answer_sets


def naive_k_n_match(data, query, k: int, n: int) -> MatchResult:
    """One-shot convenience wrapper around :class:`NaiveScanEngine`."""
    return NaiveScanEngine(data).k_n_match(query, k, n)


def naive_frequent_k_n_match(
    data, query, k: int, n_range: Tuple[int, int]
) -> FrequentMatchResult:
    """One-shot convenience wrapper around :class:`NaiveScanEngine`."""
    return NaiveScanEngine(data).frequent_k_n_match(query, k, n_range)
