"""Partial similarity, skylines and noise robustness (Sec. 2's ideas).

Three short studies:

1. The paper's Figure-2 example: how 1-match / 2-match answers differ
   from the skyline of the same five points.
2. Noise robustness: corrupt a few dimensions of otherwise-identical
   points and watch Euclidean kNN degrade while frequent k-n-match holds.
3. k-n-match vs DPF (the closest related work): order statistic vs
   partial aggregation over the same n best dimensions.

Run:  python examples/partial_similarity.py
"""

import numpy as np

from repro import MatchDatabase
from repro.baselines import DPFEngine, skyline
from repro.data import make_uci_standin
from repro.eval import (
    class_stripping_accuracy,
    frequent_knmatch_searcher,
    igrid_searcher,
    knn_searcher,
)


def figure2_demo() -> None:
    print("=" * 70)
    print("Figure 2: n-match answers vs the skyline")
    print("=" * 70)
    # Five points laid out like the paper's sketch: A nearly shares Q's
    # x, B is close in both dimensions, C is close in y only, D/E share
    # (roughly) one coordinate each.
    points = {
        "A": [5.05, 9.0],
        "B": [6.0, 6.5],
        "C": [9.5, 5.8],
        "D": [4.7, 1.0],
        "E": [5.4, 0.5],
    }
    names = list(points)
    data = np.array([points[name] for name in names])
    query = np.array([5.0, 6.0])

    db = MatchDatabase(data)
    three_one = db.k_n_match(query, k=3, n=1)
    two_two = db.k_n_match(query, k=2, n=2)
    sky = skyline(data, query=query)
    print(f"  3-1-match of Q: {sorted(names[i] for i in three_one.ids)}")
    print(f"  2-2-match of Q: {sorted(names[i] for i in two_two.ids)}")
    print(f"  skyline (differences to Q): {[names[i] for i in sky]}")
    print("  -> the skyline is a fixed set; k-n-match adapts to k and n.")


def noise_robustness_demo() -> None:
    print()
    print("=" * 70)
    print("Noise robustness: 'bad readings' vs similarity techniques")
    print("=" * 70)
    # The segmentation stand-in: 7 classes of image segments where 20% of
    # all readings are corrupted (the paper's bad pixels).
    dataset = make_uci_standin("segmentation")
    results = {}
    for technique, searcher in [
        ("kNN (Euclidean)", knn_searcher(dataset.data)),
        ("IGrid", igrid_searcher(dataset.data)),
        ("frequent k-n-match", frequent_knmatch_searcher(dataset.data)),
    ]:
        report = class_stripping_accuracy(
            dataset, searcher, technique, queries=50, k=20, seed=5
        )
        results[technique] = report.accuracy
        print(f"  {technique:20s} accuracy {report.accuracy:.1%}")
    print("  (aggregating corrupted dimensions drags unrelated points in;")
    print("   counting matching dimensions does not)")


def dpf_comparison_demo() -> None:
    print()
    print("=" * 70)
    print("k-n-match vs DPF on the Figure-1 database")
    print("=" * 70)
    rows = np.array(
        [
            [1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1],
            [1.4, 1.4, 1.4, 1.5, 100, 1.4, 1.2, 1.2, 1, 1],
            [1, 1, 1, 1, 1, 1, 2, 100, 2, 2],
            [20.0] * 10,
        ]
    )
    query = np.full(10, 1.0)
    db = MatchDatabase(rows)
    dpf = DPFEngine(rows)
    for n in (6, 9):
        match = db.k_n_match(query, k=1, n=n)
        partial = dpf.top_k(query, k=1, n=n)
        print(f"  n={n}: k-n-match -> object {match.ids[0] + 1} "
              f"(delta {match.differences[0]:.1f}); "
              f"DPF -> object {partial.ids[0] + 1} "
              f"(distance {partial.distances[0]:.2f})")
    print("  Both use the closest n dimensions; DPF aggregates them,")
    print("  k-n-match takes the n-th order statistic (and gets a")
    print("  self-calibrating match threshold delta for free).")


if __name__ == "__main__":
    figure2_demo()
    noise_robustness_demo()
    dpf_comparison_demo()
