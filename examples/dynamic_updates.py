"""A live, updatable match database.

The paper's engines are static; `DynamicMatchDatabase` adds exact
inserts and deletes via a base-segment + delta-buffer + tombstone design
with automatic compaction.  The example simulates a sensor fleet whose
readings stream in, occasionally get recalled (deleted), and are queried
for near-matches throughout — answers stay exact at every step.

Run:  python examples/dynamic_updates.py
"""

import numpy as np

from repro import DynamicMatchDatabase
from repro.data import uniform_dataset


def main() -> None:
    # NB: a different seed from the dataset's, so the "new sensor" below
    # is genuinely new rather than a replay of row 0.
    rng = np.random.default_rng(7)
    initial = uniform_dataset(5000, 12, seed=11)
    db = DynamicMatchDatabase(initial, min_buffer=128)
    print(f"initial fleet: {db.cardinality} sensors x {db.dimensionality} readings")

    # A new sensor comes online with a signature we will look for.
    signature = rng.random(12)
    new_id = db.insert(signature)
    print(f"inserted sensor {new_id} (buffer size {db.buffer_size})")

    result = db.k_n_match(signature, k=3, n=10)
    print(f"10-of-12 match for its signature: {result.ids} "
          f"(differences {[round(d, 4) for d in result.differences]})")
    assert result.ids[0] == new_id

    # The sensor is recalled; it must vanish from answers immediately.
    db.delete(new_id)
    result = db.k_n_match(signature, k=3, n=10)
    print(f"after recall: {result.ids} (sensor {new_id} gone: "
          f"{new_id not in result.ids})")

    # Stream churn: batches of inserts and deletes with periodic queries.
    live = set(range(5000))
    for batch in range(5):
        fresh = db.insert_many(rng.random((300, 12)))
        live.update(fresh)
        victims = rng.choice(sorted(live), size=100, replace=False)
        for victim in victims:
            db.delete(int(victim))
            live.discard(int(victim))
        probe = rng.random(12)
        answer = db.frequent_k_n_match(probe, k=5, n_range=(6, 12))
        print(f"batch {batch}: {db.cardinality} live, "
              f"{db.compactions} compactions so far, "
              f"frequent answer {answer.ids}")

    db.compact()
    print(f"final compaction -> buffer {db.buffer_size}, "
          f"tombstones {db.tombstone_count}, {db.cardinality} live sensors")


if __name__ == "__main__":
    main()
