"""Quickstart: the k-n-match and frequent k-n-match queries.

Recreates the paper's Figure-1 walkthrough — the 10-dimensional toy
database where Euclidean nearest neighbour picks the wrong object while
k-n-match finds the partial matches — then shows the same API on a
larger synthetic dataset with the three interchangeable engines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MatchDatabase, euclidean_distance, n_match_difference
from repro.data import uniform_dataset


def figure1_walkthrough() -> None:
    print("=" * 70)
    print("The paper's Figure 1: why aggregated distance goes wrong")
    print("=" * 70)
    rows = [
        [1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1],  # object 1
        [1.4, 1.4, 1.4, 1.5, 100, 1.4, 1.2, 1.2, 1, 1],  # object 2
        [1, 1, 1, 1, 1, 1, 2, 100, 2, 2],  # object 3
        [20] * 10,  # object 4
    ]
    query = [1.0] * 10
    for pid, row in enumerate(rows, start=1):
        print(
            f"  object {pid}: euclidean={euclidean_distance(row, query):8.2f}  "
            f"6-match difference={n_match_difference(row, query, 6):.1f}"
        )
    print(
        "\n  Euclidean NN picks object 4 (distance "
        f"{euclidean_distance(rows[3], query):.1f}) - the only object that"
    )
    print("  is NOT nearly identical to the query in 9 of 10 dimensions!")

    db = MatchDatabase(rows)
    for n in (6, 7, 8):
        result = db.k_n_match(query, k=1, n=n)
        print(
            f"  {n}-match -> object {result.ids[0] + 1} "
            f"(delta = {result.differences[0]:.1f})"
        )
    freq = db.frequent_k_n_match(query, k=3, n_range=(1, 10))
    print(
        "  frequent 3-n-match over n in [1,10] -> objects "
        f"{[pid + 1 for pid in freq.ids]} "
        f"(appearing {freq.frequencies} times)"
    )


def larger_example() -> None:
    print()
    print("=" * 70)
    print("Same API at scale, three engines, identical answers")
    print("=" * 70)
    data = uniform_dataset(20000, 16, seed=7)
    query = data[123] + 0.003  # near-duplicate of a database point
    db = MatchDatabase(data)

    for engine in ("ad", "block-ad", "naive"):
        result = db.frequent_k_n_match(query, k=5, n_range=(4, 12), engine=engine)
        stats = result.stats
        print(
            f"  {engine:9s} ids={result.ids}  "
            f"attributes retrieved: {stats.attributes_retrieved:>7d} "
            f"({stats.fraction_retrieved:.1%} of the database)"
        )
    print("\n  The AD engine answered exactly the same query while touching")
    print("  a small fraction of the attributes - that is Theorem 3.2 at work.")


if __name__ == "__main__":
    figure1_walkthrough()
    larger_example()
