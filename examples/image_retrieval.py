"""Image retrieval by partial similarity (the paper's Tables 2 and 3).

Searches a COIL-100-like image-feature database (100 objects x 54
features grouped into colour / texture / shape aspects) with query image
42.  Euclidean kNN never surfaces image 78 — the same boat in a
different colour — because the 18 colour differences dominate the
aggregate; k-n-match finds it for nearly every n, and the frequent
k-n-match query ranks it first without having to pick an n at all.

Run:  python examples/image_retrieval.py
"""

from repro import MatchDatabase, euclidean_distance
from repro.baselines import KnnEngine
from repro.data import (
    ASPECTS,
    PARTIAL_MATCH_IMAGE,
    QUERY_IMAGE,
    SCALED_VARIANT_IMAGE,
    make_coil_like,
)
from repro.experiments import table2_3


def describe_aspects(data, pid, query) -> str:
    """Per-aspect mean difference of one image to the query."""
    parts = []
    for aspect, (lo, hi) in ASPECTS.items():
        mean_diff = float(abs(data[pid, lo:hi] - query[lo:hi]).mean())
        parts.append(f"{aspect}={mean_diff:.3f}")
    return ", ".join(parts)


def main() -> None:
    coil = make_coil_like()
    query = coil.query()

    print("Per-aspect mean differences to query image 42:")
    for pid, label in [
        (PARTIAL_MATCH_IMAGE, "same boat, different colour"),
        (SCALED_VARIANT_IMAGE, "same object, new colour and scale"),
        (coil.knn_favourites[0], "a typical kNN answer"),
    ]:
        print(
            f"  image {pid:3d} ({label}): "
            f"{describe_aspects(coil.data, pid, query)}  "
            f"euclidean={euclidean_distance(coil.data[pid], query):.2f}"
        )
    print()

    table2, table3 = table2_3.run()
    print(table2.formatted())
    print()
    print(table3.formatted())
    print()

    # The frequent k-n-match query removes the "which n?" dilemma.
    db = MatchDatabase(coil.data)
    freq = db.frequent_k_n_match(query, k=4, n_range=(5, 50))
    print("Frequent 4-n-match over n in [5, 50]:")
    for pid, count in freq:
        marker = ""
        if pid == PARTIAL_MATCH_IMAGE:
            marker = "  <- the boat kNN never finds"
        elif pid == QUERY_IMAGE:
            marker = "  <- the query itself"
        print(f"  image {pid:3d} appeared {count:2d} times{marker}")

    knn = KnnEngine(coil.data).top_k(query, 20)
    present = PARTIAL_MATCH_IMAGE in knn.ids
    print(
        f"\nImage {PARTIAL_MATCH_IMAGE} in the 20 nearest neighbours: "
        f"{present} (paper: absent even at k = 20)"
    )


if __name__ == "__main__":
    main()
