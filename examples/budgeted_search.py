"""Budgets, explanations and engine advice — the operational toolkit.

Three production concerns the library covers beyond the paper's core:

1. **Anytime search** — in the pay-per-access multiple-system setting,
   stop at an attribute budget and get a *verified* prefix of the exact
   answer plus a certified bound on everything unseen.
2. **Explanations** — for any answer, which dimensions matched within
   the adaptive threshold delta, and which outliers were ignored.
3. **Advice** — estimate AD's retrieval fraction for a workload by
   sampling, and get an engine recommendation with a stated reason.

Run:  python examples/budgeted_search.py
"""

import numpy as np

from repro import AnytimeADEngine, MatchDatabase, explain_match
from repro.core.advisor import estimate_fraction_retrieved, recommend_engine
from repro.data import uniform_dataset


def anytime_demo(data, query) -> None:
    print("=" * 70)
    print("Anytime search: pay as you go")
    print("=" * 70)
    engine = AnytimeADEngine(data)
    exact = engine.k_n_match(query, k=10, n=8)
    print(f"exact answer costs {exact.stats.attributes_retrieved} attributes "
          f"({exact.stats.fraction_retrieved:.1%} of the database)\n")
    for budget in (500, 2000, 8000, None):
        result = engine.k_n_match(query, k=10, n=8, attribute_budget=budget)
        label = "unlimited" if budget is None else f"{budget:>9d}"
        bound = (
            f"everything else >= {result.unseen_lower_bound:.4f}"
            if result.unseen_lower_bound is not None
            else "database exhausted"
        )
        print(f"  budget {label}: {len(result.ids):2d}/10 answers verified, "
              f"{bound}")
    print("\n  Each prefix is exactly the start of the exact answer -")
    print("  Thm 3.1 holds for every prefix of the consumption order.")


def explain_demo(data, query) -> None:
    print()
    print("=" * 70)
    print("Explaining an answer")
    print("=" * 70)
    db = MatchDatabase(data)
    result = db.k_n_match(query, k=1, n=8)
    winner = result.ids[0]
    explanation = explain_match(data, query, winner, 8)
    print(f"  best 8-of-16 match: point {winner} "
          f"(delta = {explanation.delta:.4f})")
    print(f"  matched dimensions: {explanation.matching_dimensions}")
    print(f"  ignored dimensions: {explanation.outlier_dimensions}")
    print("  " + explanation.describe())


def advice_demo(data) -> None:
    print()
    print("=" * 70)
    print("Cost estimation and engine advice")
    print("=" * 70)
    db = MatchDatabase(data)
    for n_range in ((4, 8), (12, 16)):
        estimate = estimate_fraction_retrieved(db, k=20, n_range=n_range)
        print(f"  {estimate}")
        advice = recommend_engine(db, 20, n_range, estimate=estimate)
        print(f"    -> use {advice.engine!r}: {advice.reason}")


if __name__ == "__main__":
    data = uniform_dataset(20000, 16, seed=5)
    query = data[77] + 0.002
    anytime_demo(data, query)
    explain_demo(data, query)
    advice_demo(data)
