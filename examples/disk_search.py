"""Disk-based search: AD vs scan vs VA-file vs IGrid (Sec. 4 and 5.2).

Builds all four disk engines over the same 16-dimensional workload and
runs one frequent k-n-match query (and IGrid's top-k), reporting the
page-level I/O each engine performed and the response time under the
2006-calibrated disk model — then re-prices the same I/O under an SSD
profile to show how the trade-off moves on modern hardware.

Run:  python examples/disk_search.py [cardinality]
"""

import sys

from repro.data import uniform_dataset, sample_queries
from repro.disk import DiskADEngine, DiskScanEngine
from repro.igrid import IGridEngine
from repro.storage import DEFAULT_DISK_MODEL, SSD_DISK_MODEL
from repro.vafile import VAFileEngine


def main(cardinality: int = 50000) -> None:
    data = uniform_dataset(cardinality, 16, seed=42)
    query = sample_queries(data, 1, seed=1)[0]
    k, n_range = 20, (4, 8)

    ad = DiskADEngine(data)
    scan = DiskScanEngine(data)
    va = VAFileEngine(data)
    igrid = IGridEngine(data)

    runs = {}
    runs["AD"] = ad.frequent_k_n_match(query, k, n_range).stats
    runs["scan"] = scan.frequent_k_n_match(query, k, n_range).stats
    runs["VA-file"] = va.frequent_k_n_match(query, k, n_range).stats
    runs["IGrid"] = igrid.top_k(query, k).stats

    print(f"{cardinality} points x 16 dims, k={k}, n range {n_range}")
    print(f"{'engine':8s} {'seq pages':>10s} {'rand pages':>10s} "
          f"{'attrs':>9s} {'2006 disk':>10s} {'SSD':>10s}")
    for name, stats in runs.items():
        hdd = DEFAULT_DISK_MODEL.simulated_seconds(stats)
        ssd = SSD_DISK_MODEL.simulated_seconds(stats)
        print(f"{name:8s} {stats.sequential_page_reads:>10d} "
              f"{stats.random_page_reads:>10d} "
              f"{stats.attributes_retrieved:>9d} "
              f"{hdd:>9.3f}s {ssd:>9.4f}s")

    print("\nAD and scan return identical answers; the VA-file returns the")
    print("same answers after refining its candidates; IGrid answers its")
    print("own proximity query.  On 2006 hardware AD wins by avoiding most")
    print("of the data; on an SSD the random-access penalty shrinks and")
    print("the scan closes much of the gap - run it and compare.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50000)
