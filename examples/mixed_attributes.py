"""Uniform matching over numeric AND categorical attributes.

Footnote 1 of the paper promises that matching gives "a uniform
treatment for both type[s] of attributes".  This example makes that
concrete with the paper's own Sec.-2.2 story: searching a catalogue for
things similar to an orange, where colour and shape are categorical and
size/weight numeric.  A k-1-match surfaces the fire (colour matches!), a
k-2-match the volleyball (round and colour-ish), and the frequent query
settles on the actual citrus.

Run:  python examples/mixed_attributes.py
"""

from repro import CATEGORICAL, NUMERIC, MixedMatchDatabase, Schema

CATALOGUE = [
    # (name)                colour    shape     diameter  weight
    ("orange #1",          "orange", "round",   0.40,     0.35),
    ("orange #2",          "orange", "round",   0.42,     0.37),
    ("grapefruit",         "yellow", "round",   0.50,     0.45),
    ("the sun (a photo)",  "orange", "round",   0.95,     0.01),
    ("a fire (a photo)",   "orange", "flame",   0.70,     0.02),
    ("volleyball",         "white",  "round",   0.85,     0.60),
    ("banana",             "yellow", "oblong",  0.45,     0.30),
    ("lime",               "green",  "round",   0.30,     0.25),
    ("melon",              "green",  "round",   0.75,     0.85),
    ("traffic cone",       "orange", "conical", 0.60,     0.55),
]


def main() -> None:
    schema = Schema.of(
        CATEGORICAL,
        CATEGORICAL,
        NUMERIC,
        NUMERIC,
        names=("colour", "shape", "diameter", "weight"),
    )
    names = [name for name, *_ in CATALOGUE]
    records = [fields for _name, *fields in CATALOGUE]
    db = MixedMatchDatabase(records, schema)
    query = ("orange", "round", 0.41, 0.36)  # "find me an orange"

    print("query: an orange (colour=orange, shape=round, d=0.41, w=0.36)\n")
    for n in (1, 2, 3, 4):
        result = db.k_n_match(query, k=2, n=n)
        answers = ", ".join(
            f"{names[pid]} (delta={diff:.2f})" for pid, diff in result
        )
        print(f"  2-{n}-match: {answers}")

    freq = db.frequent_k_n_match(query, k=2, n_range=(1, 4))
    print("\n  frequent 2-n-match over n in [1, 4]:")
    for pid, count in freq:
        print(f"    {names[pid]} - in {count} of 4 answer sets")
    print("\nThe sun and the fire match single aspects; only the oranges")
    print("keep appearing once every aspect gets a vote - the paper's")
    print("Sec. 2.2 story, now with genuinely categorical attributes.")


if __name__ == "__main__":
    main()
