"""Similarity search across multiple scoring systems (Sec. 3's model).

Several independent systems each score the same set of candidates (think
one search service per feature: text relevance, image similarity,
popularity...).  Retrieving a score costs one *sorted access*; the goal
is to find candidates whose score profile matches a target while paying
for as few accesses as possible.

The example shows (1) the k-n-match middleware doing exactly that with
the AD strategy and a per-system access bill, and (2) the paper's Fig.-3
demonstration of why Fagin's FA algorithm cannot be used instead: the
n-match difference is not a monotone aggregate.

Run:  python examples/multi_system_ir.py
"""

import numpy as np

from repro.baselines import fa_top_k
from repro.data import uniform_dataset
from repro.ir import MatchMiddleware, ScoreSystem


def middleware_demo() -> None:
    print("=" * 70)
    print("k-n-match over 6 scoring systems, 50,000 candidates")
    print("=" * 70)
    scores = uniform_dataset(50000, 6, seed=11)
    names = ["text", "image", "audio", "tags", "social", "freshness"]
    systems = [ScoreSystem(name, scores[:, j]) for j, name in enumerate(names)]
    middleware = MatchMiddleware(systems)

    target = scores[4321] * 0.99  # a profile close to a real candidate
    result = middleware.k_n_match(target, k=5, n=4)
    print(f"  target profile: {np.round(target, 3)}")
    print(f"  best 4-of-6 matches: {result.ids}")
    print(f"  their 4-match differences: {[round(d, 4) for d in result.differences]}")
    print(f"  total scores retrieved: {result.stats.attributes_retrieved} "
          f"of {result.stats.total_attributes} "
          f"({result.stats.fraction_retrieved:.2%})")
    print("  per-system bill:")
    for name, accesses in middleware.access_bill().items():
        print(f"    {name:10s} {accesses:6d} sorted accesses")

    middleware.reset_counters()
    freq = middleware.frequent_k_n_match(target, k=5, n_range=(2, 6))
    print(f"\n  frequent 5-n-match over n in [2,6]: {freq.ids} "
          f"(frequencies {freq.frequencies})")


def fa_counterexample() -> None:
    print()
    print("=" * 70)
    print("Why not Fagin's FA? The paper's Figure-3 counterexample")
    print("=" * 70)
    rows = np.array(
        [
            [0.4, 1.0, 1.0],
            [2.8, 5.5, 2.0],
            [6.5, 7.8, 5.0],
            [9.0, 9.0, 9.0],
            [3.5, 1.5, 8.0],
        ]
    )
    query = np.array([3.0, 7.0, 4.0])

    def one_match_difference(row: np.ndarray) -> float:
        return float(np.min(np.abs(row - query)))

    run = fa_top_k(rows, one_match_difference, k=1)
    print(f"  FA's 1-match answer: point {run.ids[0] + 1} "
          f"(difference {run.aggregates[0]:.1f})")
    truth = min(range(len(rows)), key=lambda i: one_match_difference(rows[i]))
    print(f"  true 1-match:        point {truth + 1} "
          f"(difference {one_match_difference(rows[truth]):.1f})")
    print(f"  FA never even saw point {truth + 1}: seen = "
          f"{sorted(pid + 1 for pid in run.seen)}")
    print("  FA requires a monotone aggregate; the n-match difference is not.")


if __name__ == "__main__":
    middleware_demo()
    fa_counterexample()
