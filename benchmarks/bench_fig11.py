"""Benchmark/regeneration of Figure 11 (disk AD vs scan on texture)."""

from conftest import emit, run_once


def test_fig11_ad_vs_scan(benchmark, scale, queries, full_scale):
    from repro.experiments import fig11

    fig_a, fig_b = run_once(
        benchmark, lambda: fig11.run(scale=scale, queries=queries)
    )
    emit(fig_a, fig_b)

    if full_scale:
        for row in fig_a.rows:
            # paper: AD's page accesses are 10-20% of the scan's
            assert row[3] < 0.35, f"AD/scan page ratio too high at k={row[0]}"
        for row in fig_b.rows:
            # paper: AD beats the scan's response time
            assert row[3] > 1.5, f"AD speedup too small at k={row[0]}"
