"""Wall-clock microbenchmarks of the three in-memory engines.

Unlike the figure benches (single-shot regenerations whose interesting
numbers are simulated), these run repeated rounds so pytest-benchmark's
timing table is meaningful: the same frequent k-n-match query through
the naive scan, the reference AD engine and the vectorised block-AD
engine, plus the build cost of the sorted-column substrate.
"""

import numpy as np
import pytest

from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.core.naive import NaiveScanEngine
from repro.data import sample_queries, uniform_dataset
from repro.sorted_lists import SortedColumns

CARDINALITY = 20000
DIMENSIONS = 16
K = 20
N_RANGE = (4, 8)


@pytest.fixture(scope="module")
def workload():
    data = uniform_dataset(CARDINALITY, DIMENSIONS, seed=1)
    query = sample_queries(data, 1, seed=2)[0]
    return data, query


@pytest.fixture(scope="module")
def columns(workload):
    return SortedColumns(workload[0])


def test_build_sorted_columns(benchmark, workload):
    data, _ = workload
    benchmark(lambda: SortedColumns(data))


def test_query_naive_scan(benchmark, workload):
    data, query = workload
    engine = NaiveScanEngine(data)
    result = benchmark(
        lambda: engine.frequent_k_n_match(query, K, N_RANGE, keep_answer_sets=False)
    )
    assert len(result.ids) == K


def test_query_reference_ad(benchmark, workload, columns):
    _, query = workload
    engine = ADEngine(columns)
    result = benchmark(
        lambda: engine.frequent_k_n_match(query, K, N_RANGE, keep_answer_sets=False)
    )
    assert len(result.ids) == K


def test_query_block_ad(benchmark, workload, columns):
    _, query = workload
    engine = BlockADEngine(columns)
    result = benchmark(
        lambda: engine.frequent_k_n_match(query, K, N_RANGE, keep_answer_sets=False)
    )
    assert len(result.ids) == K


def test_engines_agree(workload, columns):
    data, query = workload
    naive = NaiveScanEngine(data).frequent_k_n_match(query, K, N_RANGE)
    block = BlockADEngine(columns).frequent_k_n_match(query, K, N_RANGE)
    ad = ADEngine(columns).frequent_k_n_match(query, K, N_RANGE)
    assert naive.ids == block.ids == ad.ids


def test_query_knmatch_single_n(benchmark, workload, columns):
    _, query = workload
    engine = BlockADEngine(columns)
    result = benchmark(lambda: engine.k_n_match(query, K, 8))
    assert len(result.ids) == K


def test_vectorised_profile_kernel(benchmark, workload):
    """The numpy kernel every scan engine leans on."""
    data, query = workload
    out = benchmark(lambda: np.sort(np.abs(data - query), axis=1))
    assert out.shape == data.shape
