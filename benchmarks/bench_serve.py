"""Serving benchmark: HTTP throughput cold vs cache-hit, shed rate under overload.

Runs a real :class:`repro.serve.MatchServer` on an ephemeral localhost
port and measures, through :class:`repro.serve.ServeClient`:

* **cold** queries/second — every request is a distinct query, so each
  one misses the result cache and runs the engine;
* **cache-hit** queries/second — one query repeated, answered from the
  generation-keyed cache (the acceptance bar: at least
  ``HIT_SPEEDUP_TARGET`` x cold);
* **overload behaviour** — a deliberately slow database behind
  ``max_inflight=2`` and a short deadline, hammered by concurrent
  clients: every request must resolve as 200 or 429 (never hang, never
  5xx), with a non-zero shed rate.

Before any timing, remote answers are asserted bit-identical to direct
facade calls.  Results are written as machine-readable JSON under the
shared ``BENCH_*.json`` schema (see ``BENCH_serve.json`` at the
repository root for a recorded run)::

    python benchmarks/bench_serve.py --smoke -o BENCH_serve.json
    python benchmarks/bench_serve.py -o BENCH_serve.json

``--smoke`` runs the headline configuration only; its result entry
carries the same configuration signature as the full run's, so
``regress.py`` matches smoke runs against the committed full baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.engine import MatchDatabase
from repro.serve import MatchServer, ServeApp, ServeClient, canonical_json

from bench_meta import run_metadata

#: (cardinality, dimensionality, k, n) per configuration.
HEADLINE_CONFIG = (20_000, 16, 10, 8)
FULL_CONFIGS = [
    HEADLINE_CONFIG,
    (5_000, 8, 5, 4),
]
SMOKE_CONFIGS = [HEADLINE_CONFIG]

#: The acceptance bar: cache-hit throughput >= this multiple of cold.
HIT_SPEEDUP_TARGET = 5.0

COLD_QUERIES = 64
HIT_REQUESTS = 256

#: Overload section parameters.
OVERLOAD_MAX_INFLIGHT = 2
OVERLOAD_DEADLINE_MS = 100.0
OVERLOAD_CLIENTS = 12
OVERLOAD_QUERY_SECONDS = 0.15


def bench_config(
    cardinality: int, dimensionality: int, k: int, n: int, seed: int = 42
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))
    cold_queries = rng.uniform(
        0.0, 1.0, size=(COLD_QUERIES, dimensionality)
    )
    hot_query = list(rng.uniform(0.0, 1.0, size=dimensionality))

    db = MatchDatabase(data)
    app = ServeApp(db, cache_size=COLD_QUERIES + 8)
    with MatchServer(app) as server:
        client = ServeClient(server.host, server.port)

        # correctness gate: remote answers bit-identical to direct calls
        for query in cold_queries[:4]:
            direct = db.k_n_match(query, k, n)
            remote = client.query(list(query), k, n)
            assert remote.ids == direct.ids
            assert remote.differences == direct.differences
        app.cache.clear()

        started = time.perf_counter()
        for query in cold_queries:
            client.query(list(query), k, n)
        cold_seconds = time.perf_counter() - started
        assert app.cache.hits == 0, "cold pass must never hit the cache"

        body = canonical_json({"query": hot_query, "k": k, "n": n})
        status, headers, _ = client.post_raw("/v1/query", body)  # prime
        assert status == 200 and headers["X-Repro-Cache"] == "miss"
        started = time.perf_counter()
        for _ in range(HIT_REQUESTS):
            client.post_raw("/v1/query", body)
        hit_seconds = time.perf_counter() - started
        status, headers, _ = client.post_raw("/v1/query", body)
        assert headers["X-Repro-Cache"] == "hit", "hot pass must hit"

    cold_qps = COLD_QUERIES / cold_seconds
    hit_qps = HIT_REQUESTS / hit_seconds
    return {
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n": n,
        "cold": {
            "queries": COLD_QUERIES,
            "seconds": cold_seconds,
            "queries_per_second": cold_qps,
        },
        "cache_hit": {
            "queries": HIT_REQUESTS,
            "seconds": hit_seconds,
            "queries_per_second": hit_qps,
        },
        "hit_over_cold_speedup": hit_qps / cold_qps,
    }


class _SlowDB:
    """Duck-typed facade whose queries take a fixed wall time."""

    def __init__(self, inner: MatchDatabase, seconds: float) -> None:
        self._inner = inner
        self._seconds = seconds
        self.cardinality = inner.cardinality
        self.dimensionality = inner.dimensionality

    def k_n_match(self, query, k, n):
        time.sleep(self._seconds)
        return self._inner.k_n_match(query, k, n)


def bench_overload(seed: int = 7) -> Dict:
    """Hammer a slow server past ``max_inflight``; count the sheds."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(500, 8))
    db = _SlowDB(MatchDatabase(data), OVERLOAD_QUERY_SECONDS)
    app = ServeApp(
        db,
        max_inflight=OVERLOAD_MAX_INFLIGHT,
        deadline_ms=OVERLOAD_DEADLINE_MS,
        cache_size=0,
    )
    statuses: List[int] = []
    lock = threading.Lock()
    with MatchServer(app) as server:
        client = ServeClient(server.host, server.port)

        def fire(index: int) -> None:
            body = canonical_json(
                {"query": list(rng.uniform(size=8)), "k": 3, "n": 4}
            )
            status, _, _ = client.post_raw("/v1/query", body)
            with lock:
                statuses.append(status)

        threads = [
            threading.Thread(target=fire, args=(index,))
            for index in range(OVERLOAD_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        elapsed = time.perf_counter() - started

    answered = statuses.count(200)
    shed = statuses.count(429)
    assert len(statuses) == OVERLOAD_CLIENTS, "every request must resolve"
    assert answered + shed == OVERLOAD_CLIENTS, (
        f"only 200/429 allowed under overload; got {sorted(set(statuses))}"
    )
    assert shed > 0, "overload past max_inflight must shed"
    assert app.admission.inflight == 0
    return {
        "clients": OVERLOAD_CLIENTS,
        "max_inflight": OVERLOAD_MAX_INFLIGHT,
        "deadline_ms": OVERLOAD_DEADLINE_MS,
        "query_seconds": OVERLOAD_QUERY_SECONDS,
        "answered": answered,
        "shed": shed,
        "shed_rate": shed / OVERLOAD_CLIENTS,
        "wall_seconds": elapsed,
        "never_hung": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="headline configuration only"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    report = {
        "benchmark": "bench_serve",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(backend="thread"),
        "results": [],
    }
    for cardinality, dimensionality, k, n in configs:
        print(
            f"config c={cardinality} d={dimensionality} k={k} n={n} ...",
            flush=True,
        )
        entry = bench_config(cardinality, dimensionality, k, n)
        report["results"].append(entry)
        print(
            f"  cold      {entry['cold']['queries_per_second']:8.1f} q/s\n"
            f"  cache-hit {entry['cache_hit']['queries_per_second']:8.1f} q/s "
            f"({entry['hit_over_cold_speedup']:.1f}x)",
            flush=True,
        )
        if (cardinality, dimensionality, k, n) == HEADLINE_CONFIG:
            report["headline"] = {
                "config": {
                    "cardinality": cardinality,
                    "dimensionality": dimensionality,
                    "k": k,
                    "n": n,
                },
                "hit_over_cold_speedup": entry["hit_over_cold_speedup"],
                "target": HIT_SPEEDUP_TARGET,
                "meets_target": (
                    entry["hit_over_cold_speedup"] >= HIT_SPEEDUP_TARGET
                ),
            }
            print(
                f"  headline: {entry['hit_over_cold_speedup']:.1f}x cache-hit "
                f"speedup (target {HIT_SPEEDUP_TARGET:g}x, "
                f"{'met' if report['headline']['meets_target'] else 'MISSED'})",
                flush=True,
            )

    print("overload shedding ...", flush=True)
    report["overload"] = bench_overload()
    print(
        f"  {report['overload']['answered']} answered, "
        f"{report['overload']['shed']} shed "
        f"({report['overload']['shed_rate']:.0%}) in "
        f"{report['overload']['wall_seconds']:.2f}s; every request resolved",
        flush=True,
    )

    if not args.smoke and not report["headline"]["meets_target"]:
        print(
            "error: cache-hit speedup below target in a full run",
            file=sys.stderr,
        )
        return 1

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
