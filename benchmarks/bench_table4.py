"""Benchmark/regeneration of Table 4 (class-stripping accuracy)."""

from conftest import emit, run_once


def test_table4_accuracy_comparison(benchmark):
    from repro.experiments import table4

    result = run_once(benchmark, lambda: table4.run(queries=100, k=20))
    emit(result)

    igrid = result.column("IGrid")
    freq = result.column("Freq. k-n-match")
    # Shape: frequent k-n-match beats IGrid on (at least) four of the
    # five stand-ins and never loses by more than noise; the paper's own
    # iris margin was 0.7pp.
    wins = sum(f > g for f, g in zip(freq, igrid))
    assert wins >= 4
    assert all(f >= g - 0.02 for f, g in zip(freq, igrid))
    # Aggregate superiority is unambiguous.
    assert sum(freq) > sum(igrid)
