"""Benchmark/regeneration of Figure 12 (disk AD vs scan, n1 sweep)."""

from conftest import emit, run_once


def test_fig12_n1_sweep(benchmark, scale, queries, full_scale):
    from repro.experiments import fig12

    fig_a, fig_b = run_once(
        benchmark, lambda: fig12.run(scale=scale, queries=queries)
    )
    emit(fig_a, fig_b)

    # AD's page accesses grow with n1 on both workloads.
    for name in ("uniform", "texture"):
        pages = [row[2] for row in fig_a.rows if row[0] == name]
        assert pages == sorted(pages)

    if full_scale:
        # paper: on uniform data AD still beats the scan at n1 = 14.
        uniform = {row[1]: (row[2], row[3]) for row in fig_b.rows if row[0] == "uniform"}
        assert uniform[14][0] < uniform[14][1]
        # ... and on the skewed texture data even at n1 = 16.
        texture = {row[1]: (row[2], row[3]) for row in fig_b.rows if row[0] == "texture"}
        assert texture[16][0] < texture[16][1]
