"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table/figure of the paper at the
paper's workload sizes, prints the rows, and asserts the *shape* claims
the paper makes (who wins, by roughly what factor, where crossovers
fall).  Timing is recorded by pytest-benchmark with a single round —
the interesting measurements are the simulated response times and I/O
counters inside the tables, not this machine's wall clock.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — cardinality multiplier (default 1.0 = the
  paper's 100,000-point / 68,040-point datasets).
* ``REPRO_BENCH_QUERIES`` — queries averaged per measurement (default 2).
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))

#: Shape assertions that need the paper-sized workloads are skipped when
#: the suite is scaled down below this.
FULL_SCALE = SCALE >= 0.5


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(*results):
    """Print regenerated tables under the benchmark's captured output."""
    for result in results:
        print()
        print(result.formatted())


@pytest.fixture
def scale():
    return SCALE


@pytest.fixture
def queries():
    return QUERIES


@pytest.fixture
def full_scale():
    return FULL_SCALE
