"""Export sample tracing artifacts for CI upload.

Serves one k-n-match query through :class:`~repro.serve.ServeApp` over a
``backend="process"`` sharded database with tracing and a zero slow
threshold enabled, then writes:

* ``<outdir>/sample_flight.json`` — the full ``/v1/debug/flight``
  payload (the request's flight record, span tree included);
* ``<outdir>/sample_stitched_trace.json`` — the same request's span
  tree in Chrome ``trace_event`` form, with the worker processes' own
  phase spans stitched under their ``shard_call`` parents (distinct
  pid-keyed rows in ``chrome://tracing`` / Perfetto).

A real file (not a heredoc) because the spawn start method re-imports
``__main__``.  The export asserts the stitched tree actually contains
worker-side engine phases, so CI fails loudly if stitching breaks.

Usage::

    python benchmarks/export_flight_sample.py bench_out
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

WORKER_PHASES = {"window_grow", "heap_consume", "cursor_init"}


def main(argv=None) -> int:
    from repro.obs import SpanCollector, parse_trace_header
    from repro.serve import ServeApp, canonical_json
    from repro.shard import ShardedMatchDatabase

    argv = sys.argv[1:] if argv is None else argv
    outdir = argv[0] if argv else "bench_out"
    os.makedirs(outdir, exist_ok=True)

    rng = np.random.default_rng(0)
    data = rng.random((5_000, 8))
    db = ShardedMatchDatabase(data, shards=2, backend="process")
    try:
        app = ServeApp(
            db, spans=SpanCollector(), slow_threshold_seconds=0.0
        )
        body = canonical_json(
            {"query": [float(v) for v in data[0]], "k": 5, "n": 4}
        )
        status, headers, _ = app.handle("POST", "/v1/query", body)
        assert status == 200, status
        trace_id = parse_trace_header(dict(headers)["X-Repro-Trace"]).trace_id

        status, _, flight_body = app.handle("GET", "/v1/debug/flight", b"")
        assert status == 200, status
        with open(os.path.join(outdir, "sample_flight.json"), "w") as handle:
            handle.write(flight_body.decode() + "\n")

        status, _, chrome_body = app.handle(
            "GET", f"/v1/debug/trace/{trace_id}?format=chrome", b""
        )
        assert status == 200, status
        chrome = json.loads(chrome_body)
        names = {event["name"] for event in chrome["traceEvents"]}
        assert "shard_call" in names and names & WORKER_PHASES, (
            f"stitched trace is missing worker phase spans: {sorted(names)}"
        )
        path = os.path.join(outdir, "sample_stitched_trace.json")
        with open(path, "w") as handle:
            handle.write(chrome_body.decode() + "\n")
        print(
            f"wrote {outdir}/sample_flight.json and {path} "
            f"(trace {trace_id}, {len(chrome['traceEvents'])} events)"
        )
    finally:
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
