"""Benchmark/regeneration of Figure 10 (VA-file adaptation loses)."""

from conftest import emit, run_once


def test_fig10_vafile_vs_scan(benchmark, scale, queries, full_scale):
    from repro.experiments import fig10

    fig_a, fig_b = run_once(
        benchmark, lambda: fig10.run(scale=scale, queries=queries)
    )
    emit(fig_a, fig_b)

    # Phase 2 always refines a non-trivial candidate set.
    assert all(row[2] > 0 for row in fig_a.rows)
    if full_scale:
        # The paper's headline: the VA-file's random refinement I/O makes
        # it slower than a plain sequential scan (about 2x in the paper).
        for row in fig_b.rows:
            ratio = row[4]
            assert ratio > 1.0, f"VA-file should lose at k={row[1]} on {row[0]}"
