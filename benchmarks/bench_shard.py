"""Sharded scatter-gather benchmark: shards x workers vs serial block-AD.

Measures queries/second of :class:`repro.shard.ShardedMatchDatabase`
batch execution over a shards x workers sweep, against the plain
per-query ``BlockADEngine`` loop (the same serial baseline
``bench_batch.py`` reports against).  Sharding wins even on one core
because every shard runs the whole batch through the lock-step
``batch-block-ad`` engine, so the speedup is vectorisation first and
thread-level parallelism second.

Answers are asserted identical to the serial baseline before any timing
is recorded, and the observability layer is asserted inert when no
registry is installed.  Results are written as machine-readable JSON
(see ``BENCH_shard.json`` at the repository root for a recorded run)::

    python benchmarks/bench_shard.py --smoke -o BENCH_shard.json
    python benchmarks/bench_shard.py -o BENCH_shard.json

``--smoke`` keeps the sweep small but still runs the headline
acceptance configuration (c=50k, d=32, k=20, n=16, batch=64) at
4 shards / 4 workers, recording its speedup under ``headline``.

``--backend process`` switches to the multiprocess comparison run: the
report is named ``bench_shard_mp`` (so its keys never collide with the
thread report), every configuration is swept over *both* backends
against the same serial baseline, and a ``comparison`` section records
which backend won with the honest context (``cpu_count`` — on a
single-core host the process backend cannot win and the report says
so rather than hiding it)::

    python benchmarks/bench_shard.py --backend process --smoke \
        -o BENCH_shard_mp.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.ad_block import BlockADEngine
from repro.obs import MetricsRegistry
from repro.shard import SHARD_BACKENDS, ShardedMatchDatabase

from bench_meta import run_metadata

#: (cardinality, dimensionality, k, n, batch size) per configuration.
HEADLINE_CONFIG = (50_000, 32, 20, 16, 64)
FULL_CONFIGS = [
    HEADLINE_CONFIG,
    (50_000, 32, 20, 16, 8),
    (20_000, 16, 20, 8, 64),
]
SMOKE_CONFIGS = [HEADLINE_CONFIG]

#: (shards, workers) sweep points.
FULL_SWEEP = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 4), (8, 4)]
SMOKE_SWEEP = [(1, 1), (4, 1), (4, 4)]

#: The multiprocess comparison keeps both the sweep and the data small:
#: every point spawns workers and republishes segments, so the sweep
#: cost is dominated by pool start-up, not by the queries.
MP_CONFIGS = [(20_000, 16, 20, 8, 64)]
MP_SWEEP = [(1, 1), (2, 2), (4, 2)]
MP_SMOKE_SWEEP = [(1, 1), (4, 2)]

#: The acceptance point: >= 1.5x over serial block-AD here.
HEADLINE_POINT = (4, 4)
HEADLINE_TARGET = 1.5

ENGINE = "batch-block-ad"
PARTITIONER = "round-robin"


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_config(
    cardinality: int,
    dimensionality: int,
    k: int,
    n: int,
    batch: int,
    sweep: List[Tuple[int, int]],
    repeats: int,
    seed: int = 42,
    backend: str = "thread",
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))
    queries = rng.uniform(0.0, 1.0, size=(batch, dimensionality))

    serial = BlockADEngine(data)
    expected = [serial.k_n_match(query, k, n) for query in queries]
    serial_seconds = _best_of(
        repeats, lambda: [serial.k_n_match(query, k, n) for query in queries]
    )

    points: Dict[str, Dict] = {}
    for shards, workers in sweep:
        with ShardedMatchDatabase(
            data,
            shards=shards,
            partitioner=PARTITIONER,
            workers=workers,
            backend=backend,
        ) as db:
            # correctness gate + warm-up in one: sharded must equal
            # serial (the first process-backend call also pays the pool
            # spawn, which must never be inside the timed region)
            for result, reference in zip(
                db.k_n_match_batch(queries, k, n, engine=ENGINE), expected
            ):
                assert result.ids == reference.ids
                assert result.differences == reference.differences
            seconds = _best_of(
                repeats,
                lambda: db.k_n_match_batch(queries, k, n, engine=ENGINE),
            )
        points[f"{shards}x{workers}"] = {
            "shards": shards,
            "workers": workers,
            "seconds": seconds,
            "queries_per_second": batch / seconds,
            "speedup_vs_serial": serial_seconds / seconds,
        }

    return {
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n": n,
        "batch_size": batch,
        "engine": ENGINE,
        "partitioner": PARTITIONER,
        "backend": backend,
        "serial": {
            "seconds": serial_seconds,
            "queries_per_second": batch / serial_seconds,
        },
        "sharded": points,
    }


def check_instrumentation(repeats: int, seed: int = 7) -> Dict:
    """Assert the shard layer's observability is strictly opt-in.

    1. answers are bit-identical with and without a registry installed,
    2. a registry created but never installed records nothing,
    3. the no-registry path is not materially slower than the metered
       path being disabled.
    """
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(5_000, 8))
    queries = rng.uniform(0.0, 1.0, size=(16, 8))
    k, n = 5, 4

    probe = MetricsRegistry()  # never installed: must stay empty
    plain = ShardedMatchDatabase(data, shards=4, workers=1)
    registry = MetricsRegistry()
    metered = ShardedMatchDatabase(data, shards=4, workers=1, metrics=registry)

    expected = plain.k_n_match_batch(queries, k, n, engine=ENGINE)
    observed = metered.k_n_match_batch(queries, k, n, engine=ENGINE)
    for result, reference in zip(observed, expected):
        assert result.ids == reference.ids
        assert result.differences == reference.differences
    assert probe.collect() == [], "uninstalled registry must record nothing"
    assert any(
        family.name == "repro_shard_calls_total"
        for family in registry.collect()
    ), "installed registry must record shard-level events"

    unmetered_seconds = _best_of(
        repeats, lambda: plain.k_n_match_batch(queries, k, n, engine=ENGINE)
    )
    metered_seconds = _best_of(
        repeats, lambda: metered.k_n_match_batch(queries, k, n, engine=ENGINE)
    )
    assert unmetered_seconds <= metered_seconds * 1.25, (
        f"no-registry path slower than metered path: "
        f"{unmetered_seconds:.6f}s vs {metered_seconds:.6f}s"
    )
    # A negative overhead is timing noise (the metered run happened to
    # land on a quieter scheduler slice), not evidence that metrics
    # speed anything up.  Clamp the headline number so nobody quotes a
    # "-4% overhead", but keep the raw measurement and a flag so the
    # clamp itself is visible in the report.
    raw_overhead = metered_seconds / unmetered_seconds - 1.0
    return {
        "unmetered_seconds": unmetered_seconds,
        "metered_seconds": metered_seconds,
        "metered_overhead": max(0.0, raw_overhead),
        "metered_overhead_raw": raw_overhead,
        "metered_overhead_clamped": raw_overhead < 0.0,
        "answers_identical": True,
    }


def _best_point(entry: Dict) -> Dict:
    key, stats = max(
        entry["sharded"].items(),
        key=lambda item: item[1]["queries_per_second"],
    )
    return {
        "point": key,
        "queries_per_second": stats["queries_per_second"],
        "speedup_vs_serial": stats["speedup_vs_serial"],
    }


def _compare_backends(thread_entry: Dict, process_entry: Dict) -> Dict:
    """Honest head-to-head: best point per backend, with the context.

    ``vectorized_1x1`` is the thread backend's 1-shard point — the pure
    batch-vectorisation win with no fan-out at all.  On a single-core
    host (``cpu_count`` 1) the process backend pays IPC for zero extra
    parallelism, so ``process_beats_thread`` being false there is the
    expected, recorded outcome, not a failure.
    """
    thread_best = _best_point(thread_entry)
    process_best = _best_point(process_entry)
    comparison = {
        "cardinality": thread_entry["cardinality"],
        "dimensionality": thread_entry["dimensionality"],
        "k": thread_entry["k"],
        "n": thread_entry["n"],
        "batch_size": thread_entry["batch_size"],
        "cpu_count": os.cpu_count(),
        "thread_best": thread_best,
        "process_best": process_best,
        "process_beats_thread": (
            process_best["queries_per_second"]
            > thread_best["queries_per_second"]
        ),
    }
    vectorized = thread_entry["sharded"].get("1x1")
    if vectorized is not None:
        comparison["vectorized_1x1"] = {
            "queries_per_second": vectorized["queries_per_second"],
            "speedup_vs_serial": vectorized["speedup_vs_serial"],
        }
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="headline configuration only, reduced sweep",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per path (best kept)"
    )
    parser.add_argument(
        "--backend",
        choices=SHARD_BACKENDS,
        default="thread",
        help="'process' runs the multiprocess comparison report "
        "(bench_shard_mp): both backends over the same sweep, plus a "
        "thread-vs-process comparison section",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    comparing = args.backend == "process"
    if comparing:
        configs = MP_CONFIGS
        sweep = MP_SMOKE_SWEEP if args.smoke else MP_SWEEP
        backends = ["thread", "process"]
    else:
        configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
        sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
        backends = ["thread"]
    # best-of-2 even in smoke mode: single runs are too noisy to judge
    # the headline speedup against its target
    repeats = 2 if args.smoke else args.repeats

    report = {
        "benchmark": "bench_shard_mp" if comparing else "bench_shard",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(
            backend="thread+process" if comparing else args.backend
        ),
        "repeats": repeats,
        "results": [],
    }
    if comparing:
        report["comparisons"] = []
    print("instrumentation check ...", flush=True)
    report["instrumentation"] = check_instrumentation(max(repeats, 3))
    print(
        f"  metered overhead "
        f"{report['instrumentation']['metered_overhead']:+.1%} "
        f"(answers identical, no-registry path records nothing)",
        flush=True,
    )
    for cardinality, dimensionality, k, n, batch in configs:
        entries = {}
        for backend in backends:
            print(
                f"config c={cardinality} d={dimensionality} k={k} n={n} "
                f"batch={batch} backend={backend} ...",
                flush=True,
            )
            entry = bench_config(
                cardinality, dimensionality, k, n, batch, sweep, repeats,
                backend=backend,
            )
            entries[backend] = entry
            report["results"].append(entry)
            print(
                f"  serial          "
                f"{entry['serial']['queries_per_second']:8.1f} q/s",
                flush=True,
            )
            for key, stats in entry["sharded"].items():
                print(
                    f"  {backend:>7} {key:>5} "
                    f"{stats['queries_per_second']:6.1f} q/s "
                    f"({stats['speedup_vs_serial']:.2f}x)",
                    flush=True,
                )
        if comparing:
            comparison = _compare_backends(
                entries["thread"], entries["process"]
            )
            report["comparisons"].append(comparison)
            winner = (
                "process"
                if comparison["process_beats_thread"]
                else "thread"
            )
            print(
                f"  best thread {comparison['thread_best']['point']} "
                f"{comparison['thread_best']['queries_per_second']:.1f} q/s  "
                f"vs process {comparison['process_best']['point']} "
                f"{comparison['process_best']['queries_per_second']:.1f} q/s "
                f"-> {winner} wins on {comparison['cpu_count']} core(s)",
                flush=True,
            )
        entry = entries["thread"]
        if (
            not comparing
            and (cardinality, dimensionality, k, n, batch) == HEADLINE_CONFIG
        ):
            key = f"{HEADLINE_POINT[0]}x{HEADLINE_POINT[1]}"
            point = entry["sharded"].get(key)
            if point is not None:
                report["headline"] = {
                    "config": {
                        "cardinality": cardinality,
                        "dimensionality": dimensionality,
                        "k": k,
                        "n": n,
                        "batch_size": batch,
                    },
                    "shards": HEADLINE_POINT[0],
                    "workers": HEADLINE_POINT[1],
                    "speedup_vs_serial": point["speedup_vs_serial"],
                    "target": HEADLINE_TARGET,
                    "meets_target": (
                        point["speedup_vs_serial"] >= HEADLINE_TARGET
                    ),
                }
                print(
                    f"  headline: {point['speedup_vs_serial']:.2f}x at "
                    f"{key} (target {HEADLINE_TARGET}x, "
                    f"{'met' if report['headline']['meets_target'] else 'MISSED'})",
                    flush=True,
                )

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
