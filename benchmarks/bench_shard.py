"""Sharded scatter-gather benchmark: shards x workers vs serial block-AD.

Measures queries/second of :class:`repro.shard.ShardedMatchDatabase`
batch execution over a shards x workers sweep, against the plain
per-query ``BlockADEngine`` loop (the same serial baseline
``bench_batch.py`` reports against).  Sharding wins even on one core
because every shard runs the whole batch through the lock-step
``batch-block-ad`` engine, so the speedup is vectorisation first and
thread-level parallelism second.

Answers are asserted identical to the serial baseline before any timing
is recorded, and the observability layer is asserted inert when no
registry is installed.  Results are written as machine-readable JSON
(see ``BENCH_shard.json`` at the repository root for a recorded run)::

    python benchmarks/bench_shard.py --smoke -o BENCH_shard.json
    python benchmarks/bench_shard.py -o BENCH_shard.json

``--smoke`` keeps the sweep small but still runs the headline
acceptance configuration (c=50k, d=32, k=20, n=16, batch=64) at
4 shards / 4 workers, recording its speedup under ``headline``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.ad_block import BlockADEngine
from repro.obs import MetricsRegistry
from repro.shard import ShardedMatchDatabase

#: (cardinality, dimensionality, k, n, batch size) per configuration.
HEADLINE_CONFIG = (50_000, 32, 20, 16, 64)
FULL_CONFIGS = [
    HEADLINE_CONFIG,
    (50_000, 32, 20, 16, 8),
    (20_000, 16, 20, 8, 64),
]
SMOKE_CONFIGS = [HEADLINE_CONFIG]

#: (shards, workers) sweep points.
FULL_SWEEP = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 4), (8, 4)]
SMOKE_SWEEP = [(1, 1), (4, 1), (4, 4)]

#: The acceptance point: >= 1.5x over serial block-AD here.
HEADLINE_POINT = (4, 4)
HEADLINE_TARGET = 1.5

ENGINE = "batch-block-ad"
PARTITIONER = "round-robin"


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_config(
    cardinality: int,
    dimensionality: int,
    k: int,
    n: int,
    batch: int,
    sweep: List[Tuple[int, int]],
    repeats: int,
    seed: int = 42,
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))
    queries = rng.uniform(0.0, 1.0, size=(batch, dimensionality))

    serial = BlockADEngine(data)
    expected = [serial.k_n_match(query, k, n) for query in queries]
    serial_seconds = _best_of(
        repeats, lambda: [serial.k_n_match(query, k, n) for query in queries]
    )

    points: Dict[str, Dict] = {}
    for shards, workers in sweep:
        db = ShardedMatchDatabase(
            data, shards=shards, partitioner=PARTITIONER, workers=workers
        )
        # correctness gate + warm-up in one: sharded must equal serial
        for result, reference in zip(
            db.k_n_match_batch(queries, k, n, engine=ENGINE), expected
        ):
            assert result.ids == reference.ids
            assert result.differences == reference.differences
        seconds = _best_of(
            repeats,
            lambda: db.k_n_match_batch(queries, k, n, engine=ENGINE),
        )
        points[f"{shards}x{workers}"] = {
            "shards": shards,
            "workers": workers,
            "seconds": seconds,
            "queries_per_second": batch / seconds,
            "speedup_vs_serial": serial_seconds / seconds,
        }

    return {
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n": n,
        "batch_size": batch,
        "engine": ENGINE,
        "partitioner": PARTITIONER,
        "serial": {
            "seconds": serial_seconds,
            "queries_per_second": batch / serial_seconds,
        },
        "sharded": points,
    }


def check_instrumentation(repeats: int, seed: int = 7) -> Dict:
    """Assert the shard layer's observability is strictly opt-in.

    1. answers are bit-identical with and without a registry installed,
    2. a registry created but never installed records nothing,
    3. the no-registry path is not materially slower than the metered
       path being disabled.
    """
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(5_000, 8))
    queries = rng.uniform(0.0, 1.0, size=(16, 8))
    k, n = 5, 4

    probe = MetricsRegistry()  # never installed: must stay empty
    plain = ShardedMatchDatabase(data, shards=4, workers=1)
    registry = MetricsRegistry()
    metered = ShardedMatchDatabase(data, shards=4, workers=1, metrics=registry)

    expected = plain.k_n_match_batch(queries, k, n, engine=ENGINE)
    observed = metered.k_n_match_batch(queries, k, n, engine=ENGINE)
    for result, reference in zip(observed, expected):
        assert result.ids == reference.ids
        assert result.differences == reference.differences
    assert probe.collect() == [], "uninstalled registry must record nothing"
    assert any(
        family.name == "repro_shard_calls_total"
        for family in registry.collect()
    ), "installed registry must record shard-level events"

    unmetered_seconds = _best_of(
        repeats, lambda: plain.k_n_match_batch(queries, k, n, engine=ENGINE)
    )
    metered_seconds = _best_of(
        repeats, lambda: metered.k_n_match_batch(queries, k, n, engine=ENGINE)
    )
    assert unmetered_seconds <= metered_seconds * 1.25, (
        f"no-registry path slower than metered path: "
        f"{unmetered_seconds:.6f}s vs {metered_seconds:.6f}s"
    )
    return {
        "unmetered_seconds": unmetered_seconds,
        "metered_seconds": metered_seconds,
        "metered_overhead": metered_seconds / unmetered_seconds - 1.0,
        "answers_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="headline configuration only, reduced sweep",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per path (best kept)"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    # best-of-2 even in smoke mode: single runs are too noisy to judge
    # the headline speedup against its target
    repeats = 2 if args.smoke else args.repeats

    report = {
        "benchmark": "bench_shard",
        "mode": "smoke" if args.smoke else "full",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "repeats": repeats,
        "results": [],
    }
    print("instrumentation check ...", flush=True)
    report["instrumentation"] = check_instrumentation(max(repeats, 3))
    print(
        f"  metered overhead "
        f"{report['instrumentation']['metered_overhead']:+.1%} "
        f"(answers identical, no-registry path records nothing)",
        flush=True,
    )
    for cardinality, dimensionality, k, n, batch in configs:
        print(
            f"config c={cardinality} d={dimensionality} k={k} n={n} "
            f"batch={batch} ...",
            flush=True,
        )
        entry = bench_config(
            cardinality, dimensionality, k, n, batch, sweep, repeats
        )
        report["results"].append(entry)
        print(
            f"  serial      {entry['serial']['queries_per_second']:8.1f} q/s",
            flush=True,
        )
        for key, stats in entry["sharded"].items():
            print(
                f"  sharded {key:>5} {stats['queries_per_second']:6.1f} q/s "
                f"({stats['speedup_vs_serial']:.2f}x)",
                flush=True,
            )
        if (cardinality, dimensionality, k, n, batch) == HEADLINE_CONFIG:
            key = f"{HEADLINE_POINT[0]}x{HEADLINE_POINT[1]}"
            point = entry["sharded"].get(key)
            if point is not None:
                report["headline"] = {
                    "config": {
                        "cardinality": cardinality,
                        "dimensionality": dimensionality,
                        "k": k,
                        "n": n,
                        "batch_size": batch,
                    },
                    "shards": HEADLINE_POINT[0],
                    "workers": HEADLINE_POINT[1],
                    "speedup_vs_serial": point["speedup_vs_serial"],
                    "target": HEADLINE_TARGET,
                    "meets_target": (
                        point["speedup_vs_serial"] >= HEADLINE_TARGET
                    ),
                }
                print(
                    f"  headline: {point['speedup_vs_serial']:.2f}x at "
                    f"{key} (target {HEADLINE_TARGET}x, "
                    f"{'met' if report['headline']['meets_target'] else 'MISSED'})",
                    flush=True,
                )

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
