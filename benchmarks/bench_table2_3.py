"""Benchmark/regeneration of Tables 2 and 3 (COIL-100 stand-in)."""

from conftest import emit, run_once
from repro.data import PARTIAL_MATCH_IMAGE, QUERY_IMAGE


def test_table2_and_table3(benchmark):
    from repro.experiments import table2_3

    table2, table3 = run_once(benchmark, table2_3.run)
    emit(table2, table3)

    # Shape: the partial-match image dominates the k-n-match answers...
    appearances = sum(
        str(PARTIAL_MATCH_IMAGE) in str(row[1]) for row in table2.rows
    )
    assert appearances >= len(table2.rows) // 2
    # ... the query itself is always found ...
    assert all(str(QUERY_IMAGE) in str(row[1]) for row in table2.rows)
    # ... and kNN never surfaces the partial match (paper: absent at 20).
    assert str(PARTIAL_MATCH_IMAGE) not in str(table3.rows[0][1])
