"""Planner benchmark: ``engine="auto"`` vs every manual engine choice.

Runs workloads engineered so that *different* manual engines win — a
low-retrieval-fraction configuration where the frontier ``block-ad``
engine dominates, a high-fraction configuration where the vectorised
``naive`` scan does, and a batch configuration where the lock-step
``batch-block-ad`` engine competes — and measures whether the
cost-based planner behind ``engine="auto"`` actually lands on the
winner.

Per workload the report records queries/second for every manual engine
and for ``auto`` (planned once, decision cached — the one-off planning
cost is recorded separately as ``plan_seconds``), plus two acceptance
flags:

* ``auto_within_10pct_of_best`` — auto's throughput is >= 90% of the
  best manual engine's on this workload;
* ``auto_beats_worst_1_5x`` — auto is >= 1.5x the worst manual engine
  (the reference ``ad`` engine's Python heap makes this the price of
  *not* planning).

Answers are asserted bit-identical between auto and every manual engine
before any timing is recorded (the data is tie-free uniform, where all
engines agree exactly).  Results are written as machine-readable JSON
(see ``BENCH_plan.json`` at the repository root for a recorded run)::

    python benchmarks/bench_plan.py --smoke -o BENCH_plan.json
    python benchmarks/bench_plan.py -o BENCH_plan.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.engine import MatchDatabase

from bench_meta import run_metadata

#: Manual engines every workload is priced against; ``ad`` is the
#: reference heap implementation and the expected worst case.
SINGLE_ENGINES = ("ad", "block-ad", "naive")
BATCH_ENGINES = ("ad", "batch-block-ad", "block-ad", "naive")

#: name, kind, cardinality, dimensionality, k, (n0, n1), queries, batched
WORKLOADS = [
    # Low retrieval fraction: the frontier engines stop early, the scan
    # cannot — block-ad should win and auto should follow it.
    ("low-fraction", "k_n_match", 6_000, 12, 10, (4, 4), 8, False),
    # High retrieval fraction (n ~ d, large k): the frontier's early
    # stop buys nothing, the plain scan's simplicity wins.
    ("high-fraction", "frequent_k_n_match", 3_000, 8, 150, (7, 8), 8, False),
    # Batch: the lock-step batch engine joins the candidate set.
    ("batch", "k_n_match", 6_000, 12, 10, (6, 6), 16, True),
]

AUTO_TOLERANCE = 0.9  # auto >= 90% of the best manual engine
WORST_MARGIN = 1.5  # auto >= 1.5x the worst manual engine, somewhere


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _runner(db, kind, queries, k, n_range, batched, engine):
    """A zero-argument callable executing the whole workload once."""
    if batched:
        if kind == "k_n_match":
            return lambda: db.k_n_match_batch(queries, k, n_range[0], engine=engine)
        return lambda: db.frequent_k_n_match_batch(
            queries, k, n_range, engine=engine
        )
    if kind == "k_n_match":
        return lambda: [
            db.k_n_match(query, k, n_range[0], engine=engine)
            for query in queries
        ]
    return lambda: [
        db.frequent_k_n_match(query, k, n_range, engine=engine)
        for query in queries
    ]


def _answers(results):
    if isinstance(results, list):
        return [(r.ids, r.differences if hasattr(r, "differences") else r.frequencies) for r in results]
    return [(results.ids, getattr(results, "differences", None))]


def bench_workload(
    name: str,
    kind: str,
    cardinality: int,
    dimensionality: int,
    k: int,
    n_range,
    num_queries: int,
    batched: bool,
    repeats: int,
    seed: int = 42,
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))
    queries = rng.uniform(0.0, 1.0, size=(num_queries, dimensionality))

    db = MatchDatabase(data)
    manual_engines = BATCH_ENGINES if batched else SINGLE_ENGINES

    # Plan once up front: the decision is cached per workload, so the
    # planner's estimate+probe cost is a one-off, reported separately.
    started = time.perf_counter()
    plan = db.plan_query(kind, k, n_range, batched=batched)
    plan_seconds = time.perf_counter() - started

    # Correctness gate before any timing: auto must answer bit-identical
    # to every manual engine (tie-free data: all engines agree exactly).
    reference = _answers(_runner(db, kind, queries, k, n_range, batched, "auto")())
    for engine in manual_engines:
        answers = _answers(_runner(db, kind, queries, k, n_range, batched, engine)())
        assert answers == reference, (
            f"{name}: auto answers differ from engine={engine}"
        )

    engines: Dict[str, Dict] = {}
    for engine in manual_engines + ("auto",):
        run = _runner(db, kind, queries, k, n_range, batched, engine)
        run()  # warm-up (sorted-column build, planner cache)
        seconds = _best_of(repeats, run)
        engines[engine] = {
            "seconds": seconds,
            "queries_per_second": num_queries / seconds,
        }

    manual_rates = {
        engine: engines[engine]["queries_per_second"]
        for engine in manual_engines
    }
    best = max(manual_rates, key=manual_rates.get)
    worst = min(manual_rates, key=manual_rates.get)
    auto_rate = engines["auto"]["queries_per_second"]
    return {
        "workload": name,
        "kind": kind,
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n0": n_range[0],
        "n1": n_range[1],
        "num_queries": num_queries,
        "batched": batched,
        "engines": engines,
        "plan": {
            "chosen_engine": plan.engine,
            "predicted_seconds": plan.predicted_seconds,
            "plan_seconds": plan_seconds,
            "estimated_fraction": (
                plan.estimate.mean_fraction if plan.estimate else None
            ),
        },
        "best_manual": best,
        "worst_manual": worst,
        "auto_vs_best": auto_rate / manual_rates[best],
        "auto_vs_worst": auto_rate / manual_rates[worst],
        "auto_within_10pct_of_best": auto_rate >= AUTO_TOLERANCE * manual_rates[best],
        "auto_beats_worst_1_5x": auto_rate >= WORST_MARGIN * manual_rates[worst],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer timed repeats (same workloads: the decision quality "
        "being measured does not shrink)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per path (best kept)"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)
    # best-of-3 even in smoke mode: the 10%-of-best acceptance margin is
    # tighter than two-run timing noise on a shared CI core
    repeats = 3 if args.smoke else args.repeats

    report = {
        "benchmark": "bench_plan",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(),
        "repeats": repeats,
        "results": [],
    }
    for name, kind, cardinality, dimensionality, k, n_range, queries, batched in WORKLOADS:
        print(
            f"workload {name}: {kind} c={cardinality} d={dimensionality} "
            f"k={k} n={n_range}{' batch' if batched else ''} ...",
            flush=True,
        )
        entry = bench_workload(
            name, kind, cardinality, dimensionality, k, n_range, queries,
            batched, repeats,
        )
        report["results"].append(entry)
        for engine, stats in entry["engines"].items():
            marker = " <- auto" if engine == entry["plan"]["chosen_engine"] else ""
            print(
                f"  {engine:15s} {stats['queries_per_second']:8.1f} q/s{marker}",
                flush=True,
            )
        print(
            f"  auto planned {entry['plan']['chosen_engine']} "
            f"(plan cost {entry['plan']['plan_seconds'] * 1e3:.1f}ms); "
            f"{entry['auto_vs_best']:.2f}x best manual, "
            f"{entry['auto_vs_worst']:.2f}x worst manual",
            flush=True,
        )

    report["acceptance"] = {
        "auto_within_10pct_everywhere": all(
            entry["auto_within_10pct_of_best"] for entry in report["results"]
        ),
        "auto_beats_worst_1_5x_somewhere": any(
            entry["auto_beats_worst_1_5x"] for entry in report["results"]
        ),
    }
    print(
        f"acceptance: within-10%-of-best everywhere "
        f"{'MET' if report['acceptance']['auto_within_10pct_everywhere'] else 'MISSED'}; "
        f">=1.5x-over-worst somewhere "
        f"{'MET' if report['acceptance']['auto_beats_worst_1_5x_somewhere'] else 'MISSED'}",
        flush=True,
    )

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
