"""Beyond-the-paper: accuracy vs kNN-recall per technique (Sec. 6)."""

from conftest import emit, run_once


def test_accuracy_vs_knn_recall(benchmark):
    from repro.experiments import extra

    result = run_once(benchmark, lambda: extra.run(queries=50, k=20))
    emit(result)

    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    knn_accuracy, knn_rec = rows["kNN (Euclidean)"]
    freq_accuracy, freq_rec = rows["freq. k-n-match [1,d]"]

    # kNN has perfect recall of itself, by construction.
    assert knn_rec == 1.0
    # frequent k-n-match: clearly not a kNN approximation...
    assert freq_rec < 0.85
    # ...and clearly better at finding similar objects.
    assert freq_accuracy > knn_accuracy
    assert freq_accuracy == max(accuracy for accuracy, _rec in rows.values())