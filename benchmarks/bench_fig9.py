"""Benchmark/regeneration of Figure 9 (accuracy/retrieval trade-off)."""

from conftest import emit, run_once


def test_fig9_tradeoff(benchmark):
    from repro.experiments import fig9

    fig_a, fig_b = run_once(
        benchmark, lambda: fig9.run(queries=50, k=20, io_queries=10)
    )
    emit(fig_a, fig_b)

    # (a) retrieval grows with n1, and is well below 100% except at the top.
    for name in fig9.FIG9_DATASETS:
        curve = [row[2] for row in fig_a.rows if row[0] == name]
        assert curve == sorted(curve)
        assert curve[0] < 35.0  # small n1 -> small fraction

    # (b) the paper's reading: AD reaches IGrid's accuracy while
    # retrieving a modest share of the attributes.
    igrid_row = fig_b.rows[-1]
    assert igrid_row[0] == "IGrid (reference)"
    igrid_accuracy = igrid_row[2]
    ad_rows = [row for row in fig_b.rows if row[0] == "AD"]
    cheapest_win = min(
        (row[1] for row in ad_rows if row[2] >= igrid_accuracy), default=None
    )
    assert cheapest_win is not None
    assert cheapest_win <= 35.0
