"""Ablations of the design choices DESIGN.md calls out.

* Device profile: the AD-vs-scan verdict under the 2006 disk model vs a
  modern SSD profile — the paper's conclusion is hardware-dependent, and
  the cost model makes that checkable.
* VA-file quantizer resolution: candidate counts vs bits/dimension.
* IGrid bin count: the 2/d access analysis vs measured entries.
* Frequent range width: attribute retrieval vs [n0, n1] choice (why the
  paper recommends n1 well below d).
"""

import numpy as np

from conftest import run_once
from repro.data import sample_queries, uniform_dataset
from repro.disk import DiskADEngine, DiskScanEngine
from repro.igrid import IGridEngine
from repro.storage import DEFAULT_DISK_MODEL, SSD_DISK_MODEL
from repro.vafile import VAFileEngine

CARDINALITY = 50000
K = 20
N_RANGE = (4, 8)


def _workload():
    data = uniform_dataset(CARDINALITY, 16, seed=3)
    query = sample_queries(data, 1, seed=4)[0]
    return data, query


def test_disk_model_ablation(benchmark):
    """AD wins big on 2006 spinning rust; the gap narrows on an SSD."""

    def run():
        data, query = _workload()
        ad = DiskADEngine(data)
        scan = DiskScanEngine(data)
        ad_stats = ad.frequent_k_n_match(query, K, N_RANGE).stats
        scan_stats = scan.frequent_k_n_match(query, K, N_RANGE).stats
        return ad_stats, scan_stats

    ad_stats, scan_stats = run_once(benchmark, run)
    hdd_speedup = DEFAULT_DISK_MODEL.simulated_seconds(
        scan_stats
    ) / DEFAULT_DISK_MODEL.simulated_seconds(ad_stats)
    ssd_speedup = SSD_DISK_MODEL.simulated_seconds(
        scan_stats
    ) / SSD_DISK_MODEL.simulated_seconds(ad_stats)
    print(f"\nAD speedup over scan - 2006 HDD: {hdd_speedup:.2f}x, SSD: {ssd_speedup:.2f}x")
    assert hdd_speedup > 1.0
    # random access is nearly free on the SSD, so AD's seek overhead
    # matters less and its attribute savings matter more... but the scan
    # also stops paying for transfer. The ordering may flip; the point
    # of the ablation is the measured delta, asserted loosely:
    assert ssd_speedup > 0.2


def test_vafile_bits_ablation(benchmark):
    """Coarser approximations refine more candidates (monotone)."""

    def run():
        data, query = _workload()
        counts = []
        for bits in (2, 4, 6, 8):
            engine = VAFileEngine(data, bits=bits)
            stats = engine.frequent_k_n_match(query, K, N_RANGE).stats
            counts.append((bits, stats.candidates_refined))
        return counts

    counts = run_once(benchmark, run)
    print(f"\nbits -> candidates refined: {counts}")
    refined = [count for _bits, count in counts]
    assert refined == sorted(refined, reverse=True)


def test_igrid_bins_ablation(benchmark):
    """Measured inverted entries track the c*d/bins analysis."""

    def run():
        data, query = _workload()
        rows = []
        for bins in (4, 8, 16):
            engine = IGridEngine(data, bins=bins)
            stats = engine.top_k(query, K).stats
            rows.append((bins, stats.inverted_list_entries))
        return rows

    rows = run_once(benchmark, run)
    print(f"\nbins -> entries touched: {rows}")
    for bins, entries in rows:
        expected = 16 * CARDINALITY / bins
        assert 0.5 * expected <= entries <= 1.5 * expected


def test_correlation_ablation(benchmark):
    """AD's retrieval fraction falls as dimensions correlate — points
    close in one dimension are close in the others, so appearance
    counts concentrate and the frontier stops early."""
    from repro.core.ad import ADEngine
    from repro.data import correlated_dataset

    def run():
        rows = []
        for rho in (0.0, 0.5, 0.9):
            data = correlated_dataset(20000, 12, correlation=rho, seed=8)
            engine = ADEngine(data)
            fractions = [
                engine.frequent_k_n_match(
                    data[probe], K, (4, 8), keep_answer_sets=False
                ).stats.fraction_retrieved
                for probe in (123, 4567, 9999)
            ]
            rows.append((rho, float(np.mean(fractions))))
        return rows

    rows = run_once(benchmark, run)
    print(f"\ncorrelation -> fraction retrieved: "
          f"{[(rho, round(frac, 3)) for rho, frac in rows]}")
    fractions = {rho: frac for rho, frac in rows}
    # weak correlation is noise; strong correlation clearly helps
    assert fractions[0.9] < fractions[0.0] * 0.8


def test_buffer_pool_ablation(benchmark):
    """A warm buffer pool absorbs repeated page reads; hit rate grows
    with capacity until the working set fits."""
    from repro.storage import BufferPool, Pager

    def run():
        pager = Pager(page_size=4096)
        page_count = 512
        for _ in range(page_count):
            pager.allocate()
        rng = np.random.default_rng(9)
        # a skewed access pattern: 80% of reads hit 20% of pages
        hot = rng.choice(page_count, size=page_count // 5, replace=False)
        accesses = [
            int(rng.choice(hot)) if rng.random() < 0.8 else int(rng.integers(page_count))
            for _ in range(20000)
        ]
        rows = []
        for capacity in (16, 64, 256, 512):
            pool = BufferPool(pager, capacity=capacity)
            for page in accesses:
                pool.read(page)
            rows.append((capacity, pool.hit_rate))
        return rows

    rows = run_once(benchmark, run)
    print(f"\ncapacity -> hit rate: {[(c, round(h, 3)) for c, h in rows]}")
    hit_rates = [rate for _cap, rate in rows]
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[-1] > 0.95  # everything fits at 512 pages


def test_range_width_ablation(benchmark):
    """Attribute retrieval is governed by n1, not by the range width —
    Thm 3.3's 'frequent search costs exactly a k-n1-match search'."""

    def run():
        data, query = _workload()
        engine = DiskADEngine(data)
        narrow = engine.frequent_k_n_match(query, K, (8, 8)).stats
        wide = engine.frequent_k_n_match(query, K, (1, 8)).stats
        small = engine.frequent_k_n_match(query, K, (1, 4)).stats
        return narrow, wide, small

    narrow, wide, small = run_once(benchmark, run)
    print(
        f"\nattrs retrieved - [8,8]: {narrow.attributes_retrieved}, "
        f"[1,8]: {wide.attributes_retrieved}, [1,4]: {small.attributes_retrieved}"
    )
    assert narrow.attributes_retrieved == wide.attributes_retrieved
    assert small.attributes_retrieved < wide.attributes_retrieved
