"""Benchmark/regeneration of Figure 15 (texture: n1 sweep, skew effect)."""

from conftest import emit, run_once


def test_fig15_texture_sweep(benchmark, scale, queries, full_scale):
    from repro.experiments import fig15

    fig_a, fig_b = run_once(
        benchmark, lambda: fig15.run(scale=scale, queries=queries)
    )
    emit(fig_a, fig_b)

    # Retrieval fraction grows with n1 at any scale.
    fractions = {row[0]: row[1] for row in fig_b.rows}
    ordered = [fractions[n1] for n1 in sorted(fractions)]
    assert ordered == sorted(ordered)

    if full_scale:
        # paper: AD beats scan AND IGrid even at n1 = d = 16 ...
        for row in fig_a.rows:
            n1, scan_t, ad_t, igrid_t = row
            assert ad_t < scan_t, f"AD lost to scan at n1={n1}"
            assert ad_t < igrid_t, f"AD lost to IGrid at n1={n1}"
        # ... because the skew keeps retrieval at ~25% even at n1 = 16.
        assert fractions[16] < 40.0
