"""Approximate-tier benchmark: certified engines vs exact block-AD.

Runs each approximate engine (``budget-ad``, ``pivot-sketch``) against
the exact ``block-ad`` baseline on workloads where approximation should
pay — clustered data with a high retrieval fraction (n close to d),
where the exact frontier has to touch most cells but a sketch filter
or a budgeted frontier prefix does not — plus a uniform control.

**Soundness is asserted before any timing**: for every benched query
the certificate must hold (tie-aware measured recall >= certified
recall, via the shared :mod:`repro.eval` helpers) and every reported
difference must be the exact n-match difference of its id.  A single
unsound certificate aborts the run.

Per engine and workload the report records queries/second, the speedup
over exact block-AD, and the measured/certified recall distribution.
The acceptance target (recorded in ``BENCH_approx.json``, asserted
only as a report flag — shared CI runners make wall-clock gates
flaky): **>= 5x the exact throughput at measured recall >= 0.9 on at
least one workload**.  Recall fields are floats, so the regression
gate's config signatures ignore them by construction (and
``regress._NON_CONFIG_KEYS`` lists them explicitly)::

    python benchmarks/bench_approx.py --smoke -o BENCH_approx.json
    python benchmarks/bench_approx.py -o BENCH_approx.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.engine import MatchDatabase
from repro.data import gaussian_clusters
from repro.eval import certificate_holds, tie_aware_match_recall

from bench_meta import run_metadata

APPROX_ENGINES = ("budget-ad", "pivot-sketch")

#: name, clustered?, cardinality, dimensionality, k, n, queries,
#: per-engine kwargs.  The clustered high-n workloads are where the
#: acceptance speedup is expected; uniform mid-n is the honest control
#: where approximation helps less.
WORKLOADS = [
    (
        "clustered-high-n",
        True,
        8_000,
        32,
        10,
        24,
        12,
        {
            "budget-ad": {"budget": 12_800},  # 5% of the cells
            "pivot-sketch": {"candidate_multiplier": 64},
        },
    ),
    (
        "clustered-wide",
        True,
        4_000,
        64,
        10,
        48,
        12,
        {
            "budget-ad": {"budget": 12_800},  # 5% of the cells
            "pivot-sketch": {"candidate_multiplier": 64},
        },
    ),
    (
        "uniform-mid-n",
        False,
        6_000,
        16,
        10,
        8,
        12,
        {
            "budget-ad": {"budget": 4_800},  # 5% of the cells
            "pivot-sketch": {"candidate_multiplier": 64},
        },
    ),
]

SPEEDUP_TARGET = 5.0
RECALL_TARGET = 0.9


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _make_data(clustered: bool, cardinality: int, dimensionality: int, seed: int):
    if clustered:
        data, _labels = gaussian_clusters(
            cardinality, dimensionality, seed=seed
        )
        return data
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))


def bench_workload(
    name: str,
    clustered: bool,
    cardinality: int,
    dimensionality: int,
    k: int,
    n: int,
    num_queries: int,
    engine_kwargs: Dict[str, Dict],
    repeats: int,
    seed: int = 42,
) -> Dict:
    data = _make_data(clustered, cardinality, dimensionality, seed)
    rng = np.random.default_rng(seed + 1)
    picks = rng.choice(cardinality, size=num_queries, replace=False)
    # queries near the data (the paper's protocol): sampled rows, jittered
    queries = data[picks] + rng.normal(0.0, 0.01, size=(num_queries, dimensionality))

    db = MatchDatabase(data)
    exact = [db.k_n_match(query, k, n, engine="block-ad") for query in queries]

    entry = {
        "workload": name,
        "kind": "k_n_match",
        "clustered": clustered,
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n0": n,
        "n1": n,
        "num_queries": num_queries,
        "engines": {},
    }

    # exact baseline throughput
    def run_exact():
        for query in queries:
            db.k_n_match(query, k, n, engine="block-ad")

    run_exact()  # warm-up
    exact_seconds = _best_of(repeats, run_exact)
    exact_rate = num_queries / exact_seconds
    entry["engines"]["block-ad"] = {
        "seconds": exact_seconds,
        "queries_per_second": exact_rate,
    }

    for engine in APPROX_ENGINES:
        kwargs = dict(engine_kwargs.get(engine, {}))

        # Correctness gate BEFORE timing: certificates sound on every
        # query, and every reported difference is the true one.
        measured, certified = [], []
        for query, truth in zip(queries, exact):
            result = db.k_n_match(
                query, k, n, mode="approx", engine=engine, **kwargs
            )
            assert certificate_holds(
                result.certified_recall,
                result.differences,
                truth.differences,
            ), f"{name}/{engine}: UNSOUND certificate"
            profile = np.sort(np.abs(data[result.ids] - query), axis=1)[:, n - 1]
            assert np.allclose(result.differences, profile, atol=1e-9), (
                f"{name}/{engine}: reported differences are not exact"
            )
            measured.append(
                tie_aware_match_recall(result.differences, truth.differences)
            )
            certified.append(result.certified_recall)

        def run_approx(engine=engine, kwargs=kwargs):
            for query in queries:
                db.k_n_match(
                    query, k, n, mode="approx", engine=engine, **kwargs
                )

        run_approx()  # warm-up (sketch index build, curve caches)
        seconds = _best_of(repeats, run_approx)
        rate = num_queries / seconds
        mean_measured = float(np.mean(measured))
        entry["engines"][engine] = {
            "seconds": seconds,
            "queries_per_second": rate,
            "speedup_vs_exact": rate / exact_rate,
            "measured_recall_mean": mean_measured,
            "measured_recall_min": float(np.min(measured)),
            "certified_recall_mean": float(np.mean(certified)),
            "certified_recall_min": float(np.min(certified)),
            "certificates_sound": True,  # asserted above, per query
            "meets_target": bool(
                rate >= SPEEDUP_TARGET * exact_rate
                and mean_measured >= RECALL_TARGET
            ),
        }
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer timed repeats (soundness is asserted either way)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per path (best kept)"
    )
    parser.add_argument(
        "-o", "--output", type=str, default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else args.repeats

    report = {
        "benchmark": "bench_approx",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(),
        "repeats": repeats,
        "speedup_target": SPEEDUP_TARGET,
        "recall_target": RECALL_TARGET,
        "results": [],
    }
    for (
        name, clustered, cardinality, dimensionality, k, n, queries, kwargs,
    ) in WORKLOADS:
        print(
            f"workload {name}: c={cardinality} d={dimensionality} "
            f"k={k} n={n} ...",
            flush=True,
        )
        entry = bench_workload(
            name, clustered, cardinality, dimensionality, k, n, queries,
            kwargs, repeats,
        )
        report["results"].append(entry)
        exact_rate = entry["engines"]["block-ad"]["queries_per_second"]
        print(f"  {'block-ad':13s} {exact_rate:8.1f} q/s (exact)", flush=True)
        for engine in APPROX_ENGINES:
            stats = entry["engines"][engine]
            print(
                f"  {engine:13s} {stats['queries_per_second']:8.1f} q/s "
                f"({stats['speedup_vs_exact']:.1f}x, measured recall "
                f"{stats['measured_recall_mean']:.3f}, certified "
                f">= {stats['certified_recall_min']:.3f})"
                f"{'  <- target met' if stats['meets_target'] else ''}",
                flush=True,
            )

    report["acceptance"] = {
        "speedup_5x_at_recall_0_9_somewhere": any(
            stats.get("meets_target")
            for entry in report["results"]
            for stats in entry["engines"].values()
        ),
        "certificates_sound_everywhere": True,  # per-query asserts above
    }
    print(
        f"acceptance: >={SPEEDUP_TARGET:.0f}x at recall "
        f">={RECALL_TARGET} somewhere "
        f"{'MET' if report['acceptance']['speedup_5x_at_recall_0_9_somewhere'] else 'MISSED'}; "
        f"certificates sound on every benched query",
        flush=True,
    )

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
