"""Observability-overhead benchmark: plain vs metered vs span-traced.

Times the same k-n-match workload through identical engines in three
modes — no instrumentation, a :class:`~repro.obs.MetricsRegistry`
installed, and a :class:`~repro.obs.SpanCollector` installed — for both
the heap ``ad`` engine and the vectorised ``block-ad`` engine (the two
span-densest hot paths: per-query cursor/heap phases and per-round
window phases respectively).

A second matrix covers the serving layer end to end
(:class:`~repro.serve.ServeApp.handle`, no sockets) in three modes —
``off`` (no collector, flight recorder idle), ``context`` (span
collector installed, so every request mints/propagates a trace context
and produces a span tree), and ``flight`` (tracing plus a zero slow
threshold, so every request is additionally deposited in the flight
recorder) — asserting response bodies byte-identical across all three.

Two invariants are asserted before anything is reported:

* answers are bit-identical across all modes (response *bytes*, for the
  serve matrix), and
* the uninstrumented run is not slower than an instrumented one beyond
  timing noise (the ``None``-check guard discipline: disabled
  observability must cost nothing).

Results are written under the shared bench JSON schema (every leaf is a
``queries_per_second`` dict), so ``benchmarks/regress.py`` can gate
them; see ``BENCH_obs.json`` at the repository root for a recorded
run::

    python benchmarks/bench_obs.py --smoke          # < 10 s sanity run
    python benchmarks/bench_obs.py -o BENCH_obs.json

The smoke configuration is the first full configuration (fewer
repeats), so a smoke run produces a key subset of the committed full
report and regress.py finds genuine matches in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.obs import MetricsRegistry, SpanCollector

from bench_meta import run_metadata

#: (cardinality, dimensionality, k, n, batch size) per configuration.
FULL_CONFIGS = [
    (10_000, 16, 10, 8, 32),
    (20_000, 16, 10, 8, 32),
]
SMOKE_CONFIGS = FULL_CONFIGS[:1]

#: The allowed slowdown of the *uninstrumented* path relative to an
#: instrumented one — pure timing noise headroom, same tolerance as
#: bench_batch's instrumentation check.
NOISE_TOLERANCE = 1.25

_ENGINES = {
    "ad": lambda columns, metrics, spans: ADEngine(
        columns, metrics=metrics, spans=spans
    ),
    "block-ad": lambda columns, metrics, spans: BlockADEngine(
        columns, metrics=metrics, spans=spans
    ),
}


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_serve_modes(
    data, queries, k: int, n: int, repeats: int
) -> Dict[str, Dict]:
    """Serve-layer overhead matrix: off vs context vs flight.

    Each mode gets its own :class:`ServeApp` over the same data with the
    result cache disabled, so every timed request runs admission, JSON
    parse, the engine, and response encoding.  Response bodies must be
    byte-identical across modes — tracing may never change an answer.
    """
    from repro.core.engine import MatchDatabase
    from repro.serve import ServeApp, canonical_json

    bodies = [
        canonical_json(
            {"query": [float(value) for value in query], "k": k, "n": n}
        )
        for query in queries
    ]

    def make_app(mode: str) -> ServeApp:
        if mode == "off":
            return ServeApp(MatchDatabase(data), cache_size=0)
        if mode == "context":
            return ServeApp(
                MatchDatabase(data), cache_size=0, spans=SpanCollector()
            )
        return ServeApp(
            MatchDatabase(data),
            cache_size=0,
            spans=SpanCollector(),
            slow_threshold_seconds=0.0,  # every request hits the recorder
            flight_capacity=len(bodies),
        )

    apps = {mode: make_app(mode) for mode in ("off", "context", "flight")}
    expected = [
        apps["off"].handle("POST", "/v1/query", body) for body in bodies
    ]
    for mode in ("context", "flight"):
        for body, (status, _, reference) in zip(bodies, expected):
            got_status, _, got = apps[mode].handle("POST", "/v1/query", body)
            assert (got_status, got) == (status, reference), (
                f"serve/{mode}: response bytes diverged"
            )

    timings: Dict[str, Dict] = {}
    for mode, app in apps.items():
        seconds = _best_of(
            repeats,
            lambda app=app: [
                app.handle("POST", "/v1/query", body) for body in bodies
            ],
        )
        timings[mode] = {
            "seconds": seconds,
            "queries_per_second": len(bodies) / seconds,
        }
    off = timings["off"]["seconds"]
    for mode in ("context", "flight"):
        seconds = timings[mode]["seconds"]
        timings[mode]["overhead_vs_off"] = seconds / off - 1.0
        assert off <= seconds * NOISE_TOLERANCE, (
            f"serve: uninstrumented path slower than {mode} path: "
            f"{off:.6f}s vs {seconds:.6f}s"
        )
    return timings


def bench_config(
    cardinality: int,
    dimensionality: int,
    k: int,
    n: int,
    batch: int,
    repeats: int,
    seed: int = 42,
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))
    queries = rng.uniform(0.0, 1.0, size=(batch, dimensionality))

    engines: Dict[str, Dict] = {}
    shared_columns = None
    for engine_name, factory in _ENGINES.items():
        plain = factory(
            shared_columns if shared_columns is not None else data, None, None
        )
        shared_columns = plain.columns  # one sorted-column build for all
        metered = factory(shared_columns, MetricsRegistry(), None)
        spanned = factory(shared_columns, None, SpanCollector())

        modes = {"off": plain, "metrics": metered, "spans": spanned}
        expected = [plain.k_n_match(query, k, n) for query in queries]
        for mode_name, engine in modes.items():
            if engine is plain:
                continue
            for result, reference in zip(
                [engine.k_n_match(query, k, n) for query in queries], expected
            ):
                assert result.ids == reference.ids, (
                    f"{engine_name}/{mode_name}: ids diverged"
                )
                assert result.differences == reference.differences, (
                    f"{engine_name}/{mode_name}: differences diverged"
                )

        timings: Dict[str, Dict] = {}
        for mode_name, engine in modes.items():
            seconds = _best_of(
                repeats,
                lambda engine=engine: [
                    engine.k_n_match(query, k, n) for query in queries
                ],
            )
            timings[mode_name] = {
                "seconds": seconds,
                "queries_per_second": batch / seconds,
            }
        off = timings["off"]["seconds"]
        for mode_name in ("metrics", "spans"):
            seconds = timings[mode_name]["seconds"]
            timings[mode_name]["overhead_vs_off"] = seconds / off - 1.0
            # Disabled instrumentation must be free: the plain engine may
            # not be slower than the instrumented one beyond noise.
            assert off <= seconds * NOISE_TOLERANCE, (
                f"{engine_name}: uninstrumented path slower than "
                f"{mode_name} path: {off:.6f}s vs {seconds:.6f}s"
            )
        engines[engine_name] = timings

    return {
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n": n,
        "batch_size": batch,
        "engines": engines,
        "serve": bench_serve_modes(data, queries, k, n, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="first configuration only, fewer repeats, < 10 s end to end",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per mode (best kept)"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    configs: List = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    repeats = 2 if args.smoke else args.repeats

    report = {
        "benchmark": "bench_obs",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(backend="thread"),
        "repeats": repeats,
        "results": [],
    }
    for cardinality, dimensionality, k, n, batch in configs:
        print(
            f"config c={cardinality} d={dimensionality} k={k} n={n} "
            f"batch={batch} ...",
            flush=True,
        )
        entry = bench_config(
            cardinality, dimensionality, k, n, batch, repeats
        )
        report["results"].append(entry)
        for engine_name, timings in entry["engines"].items():
            print(
                f"  {engine_name:9s} off {timings['off']['queries_per_second']:8.1f} q/s"
                f"  metrics {timings['metrics']['overhead_vs_off']:+6.1%}"
                f"  spans {timings['spans']['overhead_vs_off']:+6.1%}",
                flush=True,
            )
        serve = entry["serve"]
        print(
            f"  {'serve':9s} off {serve['off']['queries_per_second']:8.1f} q/s"
            f"  context {serve['context']['overhead_vs_off']:+6.1%}"
            f"  flight {serve['flight']['overhead_vs_off']:+6.1%}",
            flush=True,
        )

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
