"""Benchmark/regeneration of Figure 8 (accuracy vs the [n0, n1] range)."""

from conftest import emit, run_once


def test_fig8_range_effects(benchmark):
    from repro.experiments import fig8

    fig_a, fig_b = run_once(benchmark, lambda: fig8.run(queries=100, k=20))
    emit(fig_a, fig_b)

    for name in fig8.FIG8_DATASETS:
        # (a) rise-then-fall: some interior n0 beats BOTH endpoints,
        # i.e. the curve is not monotone in either direction.
        curve_a = [row[2] for row in fig_a.rows if row[0] == name]
        best = max(curve_a)
        assert best >= curve_a[0] - 1e-9
        assert best > curve_a[-1]

        # (b) larger n1 never hurts much; small n1 is clearly worse.
        curve_b = [row[2] for row in fig_b.rows if row[0] == name]
        assert curve_b[-1] >= max(curve_b) - 0.05
        assert min(curve_b[:2]) <= curve_b[-1] + 1e-9
