"""LSM store benchmark: write throughput, query latency under write load, recovery.

Builds a real :class:`repro.lsm.LsmMatchDatabase` in a temp directory
(WAL + leveled segments + background compaction) and measures:

* **write throughput** — sustained ``insert`` calls, each one WAL-logged
  before it returns;
* **query p50, idle vs under write load** — the same query stream with
  and without a concurrent writer thread mutating the store (the
  acceptance bar: loaded p50 within ``LOAD_OVER_IDLE_TARGET`` x idle,
  i.e. background flushes and compactions never stall readers beyond a
  generation swap);
* **recovery seconds** — wall time for ``LsmMatchDatabase.recover`` to
  replay the WAL over the segment snapshots and serve again.

Before any timing, answers are asserted bit-identical (ids *and*
differences) to a from-scratch oracle over the live set, and after
recovery the live set is asserted exactly equal to everything the dead
store acknowledged.  Results are written under the shared
``BENCH_*.json`` schema (see ``BENCH_lsm.json`` at the repository
root)::

    python benchmarks/bench_lsm.py --smoke -o BENCH_lsm.json
    python benchmarks/bench_lsm.py -o BENCH_lsm.json

``--smoke`` runs the headline configuration only; its result entry
carries the same configuration signature as the full run's, so
``regress.py`` matches smoke runs against the committed full baseline
(2 throughput keys: idle and under-write-load queries/second).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.lsm import LsmMatchDatabase

from bench_meta import run_metadata

#: (rows, dimensionality, k, n) per configuration.
HEADLINE_CONFIG = (8_000, 8, 10, 4)
FULL_CONFIGS = [
    HEADLINE_CONFIG,
    (2_000, 6, 5, 3),
]
SMOKE_CONFIGS = [HEADLINE_CONFIG]

#: The acceptance bar: loaded query p50 <= this multiple of idle p50.
LOAD_OVER_IDLE_TARGET = 2.0

ORACLE_QUERIES = 8
IDLE_QUERIES = 80
LOAD_QUERIES = 80

#: The background writer throttles to this many mutations/second so the
#: "under load" section models sustained ingest, not a GIL-saturating
#: tight loop.
WRITER_THROTTLE_SECONDS = 0.001


def oracle(model: Dict[int, np.ndarray], query, k: int, n: int):
    scored = sorted(
        (float(np.sort(np.abs(row - query))[n - 1]), pid)
        for pid, row in model.items()
    )
    return (
        [pid for _diff, pid in scored[:k]],
        [diff for diff, _pid in scored[:k]],
    )


def _p50_ms(latencies: List[float]) -> float:
    return sorted(latencies)[len(latencies) // 2] * 1000.0


def _timed_queries(db, queries, k: int, n: int) -> Tuple[float, List[float]]:
    latencies = []
    started = time.perf_counter()
    for query in queries:
        t0 = time.perf_counter()
        db.k_n_match(query, k, n)
        latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - started, latencies


def bench_config(
    rows: int, dimensionality: int, k: int, n: int, seed: int = 42
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(rows, dimensionality))
    directory = tempfile.mkdtemp(prefix="bench-lsm-")
    try:
        db = LsmMatchDatabase(directory, dimensionality=dimensionality)

        # -- write throughput (every insert WAL-logged before returning)
        started = time.perf_counter()
        for row in data:
            db.insert(row)
        write_seconds = time.perf_counter() - started
        model = {pid: data[pid] for pid in range(rows)}
        for pid in range(0, rows, 7):
            db.delete(pid)
            del model[pid]

        # -- correctness gate: bit-identical to the oracle, before timing
        for query in rng.uniform(
            0.0, 1.0, size=(ORACLE_QUERIES, dimensionality)
        ):
            result = db.k_n_match(query, k, n)
            ids, differences = oracle(model, query, k, n)
            assert result.ids == ids, "oracle identity violated"
            assert result.differences == differences

        queries = rng.uniform(0.0, 1.0, size=(IDLE_QUERIES, dimensionality))

        # -- idle query latency
        idle_seconds, idle_latencies = _timed_queries(db, queries, k, n)

        # -- the same stream with a concurrent writer mutating the store
        stop = threading.Event()
        writer_ops = [0]

        def write_loop() -> None:
            mine: List[int] = []
            while not stop.is_set():
                if len(mine) < 64:
                    mine.append(
                        db.insert(rng.uniform(0.0, 1.0, dimensionality))
                    )
                else:
                    db.delete(mine.pop(0))
                writer_ops[0] += 1
                time.sleep(WRITER_THROTTLE_SECONDS)
            for pid in mine:
                db.delete(pid)

        writer = threading.Thread(target=write_loop)
        writer.start()
        try:
            load_seconds, load_latencies = _timed_queries(db, queries, k, n)
        finally:
            stop.set()
            writer.join(timeout=60)

        # quiescent again: answers must still match the oracle exactly
        check = rng.uniform(0.0, 1.0, size=dimensionality)
        ids, differences = oracle(model, check, k, n)
        result = db.k_n_match(check, k, n)
        assert result.ids == ids and result.differences == differences

        live = set(model)
        db.close()

        # -- recovery: replay the WAL over the segment snapshots
        wal_bytes = os.path.getsize(os.path.join(directory, "wal.log"))
        started = time.perf_counter()
        recovered = LsmMatchDatabase.recover(directory, auto_compact=False)
        recovery_seconds = time.perf_counter() - started
        assert set(int(p) for p in recovered.snapshot()[1]) == live, (
            "recovery must restore the exact acknowledged live set"
        )
        result = recovered.k_n_match(check, k, n)
        assert result.ids == ids and result.differences == differences
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    idle_p50 = _p50_ms(idle_latencies)
    load_p50 = _p50_ms(load_latencies)
    return {
        "rows": rows,
        "dimensionality": dimensionality,
        "k": k,
        "n": n,
        "write": {
            "writes": rows,
            "seconds": write_seconds,
            "writes_per_second": rows / write_seconds,
        },
        "idle": {
            "queries": IDLE_QUERIES,
            "seconds": idle_seconds,
            "p50_ms": idle_p50,
            "queries_per_second": IDLE_QUERIES / idle_seconds,
        },
        "under_write_load": {
            "queries": LOAD_QUERIES,
            "seconds": load_seconds,
            "p50_ms": load_p50,
            "queries_per_second": LOAD_QUERIES / load_seconds,
            "writer_ops": writer_ops[0],
        },
        "load_over_idle_p50": load_p50 / idle_p50,
        "recovery": {
            "wal_bytes": wal_bytes,
            "live_points": len(live),
            "seconds": recovery_seconds,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="headline configuration only"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    report = {
        "benchmark": "bench_lsm",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(backend="thread"),
        "results": [],
    }
    for rows, dimensionality, k, n in configs:
        print(
            f"config rows={rows} d={dimensionality} k={k} n={n} ...",
            flush=True,
        )
        entry = bench_config(rows, dimensionality, k, n)
        report["results"].append(entry)
        print(
            f"  writes    {entry['write']['writes_per_second']:8.0f} /s\n"
            f"  idle      p50 {entry['idle']['p50_ms']:6.2f} ms\n"
            f"  loaded    p50 {entry['under_write_load']['p50_ms']:6.2f} ms "
            f"({entry['load_over_idle_p50']:.2f}x idle, "
            f"{entry['under_write_load']['writer_ops']} writer ops)\n"
            f"  recovery  {entry['recovery']['seconds']:.3f} s "
            f"({entry['recovery']['wal_bytes']} WAL bytes)",
            flush=True,
        )
        if (rows, dimensionality, k, n) == HEADLINE_CONFIG:
            report["headline"] = {
                "config": {
                    "rows": rows,
                    "dimensionality": dimensionality,
                    "k": k,
                    "n": n,
                },
                "load_over_idle_p50": entry["load_over_idle_p50"],
                "target": LOAD_OVER_IDLE_TARGET,
                "meets_target": (
                    entry["load_over_idle_p50"] <= LOAD_OVER_IDLE_TARGET
                ),
            }
            print(
                f"  headline: {entry['load_over_idle_p50']:.2f}x loaded/idle "
                f"p50 (target <= {LOAD_OVER_IDLE_TARGET:g}x, "
                f"{'met' if report['headline']['meets_target'] else 'MISSED'})",
                flush=True,
            )

    if not args.smoke and not report["headline"]["meets_target"]:
        print(
            "error: loaded query p50 above target in a full run",
            file=sys.stderr,
        )
        return 1

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
