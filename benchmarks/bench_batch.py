"""Batch-execution benchmark: serial loop vs lock-step vs thread pool.

Measures queries/second of the three batch paths over the same workload:

* ``serial`` — the plain per-query loop over ``BlockADEngine`` (the
  baseline every speedup is reported against),
* ``vectorised`` — ``BatchBlockADEngine``'s lock-step batch call,
* ``parallel`` — ``ParallelBatchExecutor`` sharding the lock-step
  engine across 1/2/4 worker threads.

Answers are asserted identical across paths before any timing is
recorded.  Results are written as machine-readable JSON (see
``BENCH_batch.json`` at the repository root for a recorded run)::

    python benchmarks/bench_batch.py --smoke          # < 10 s sanity run
    python benchmarks/bench_batch.py -o BENCH_batch.json

Each configuration is timed ``--repeats`` times and the best run is
kept (wall-clock minima are the stablest point estimate on a shared
machine).  ``cpu_count`` is recorded because thread scaling is bounded
by the cores actually available.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core.ad_block import BlockADEngine
from repro.obs import MetricsRegistry, SpanCollector
from repro.parallel import BatchBlockADEngine, ParallelBatchExecutor

from bench_meta import run_metadata

#: (cardinality, dimensionality, k, n, batch size) per configuration.
FULL_CONFIGS = [
    (50_000, 32, 20, 16, 64),  # the headline acceptance configuration
    (50_000, 32, 20, 16, 8),
    (20_000, 16, 20, 8, 64),
]
SMOKE_CONFIGS = [(5_000, 8, 5, 4, 16)]

FULL_WORKERS = [1, 2, 4]
SMOKE_WORKERS = [1, 2]


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_config(
    cardinality: int,
    dimensionality: int,
    k: int,
    n: int,
    batch: int,
    workers_list: List[int],
    repeats: int,
    seed: int = 42,
) -> Dict:
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(cardinality, dimensionality))
    queries = rng.uniform(0.0, 1.0, size=(batch, dimensionality))

    serial = BlockADEngine(data)
    vectorised = BatchBlockADEngine(serial.columns)

    # Correctness gate + warm-up in one: the timed paths must agree.
    expected = [serial.k_n_match(query, k, n) for query in queries]
    for result, reference in zip(
        vectorised.k_n_match_batch(queries, k, n), expected
    ):
        assert result.ids == reference.ids
        assert result.differences == reference.differences

    serial_seconds = _best_of(
        repeats, lambda: [serial.k_n_match(query, k, n) for query in queries]
    )
    vectorised_seconds = _best_of(
        repeats, lambda: vectorised.k_n_match_batch(queries, k, n)
    )

    parallel: Dict[str, Dict] = {}
    for workers in workers_list:
        executor = ParallelBatchExecutor(vectorised, workers=workers)
        for result, reference in zip(
            executor.k_n_match_batch(queries, k, n), expected
        ):
            assert result.ids == reference.ids
        seconds = _best_of(
            repeats, lambda: executor.k_n_match_batch(queries, k, n)
        )
        parallel[str(workers)] = {
            "seconds": seconds,
            "queries_per_second": batch / seconds,
            "speedup_vs_serial": serial_seconds / seconds,
        }

    return {
        "cardinality": cardinality,
        "dimensionality": dimensionality,
        "k": k,
        "n": n,
        "batch_size": batch,
        "serial": {
            "seconds": serial_seconds,
            "queries_per_second": batch / serial_seconds,
        },
        "vectorised": {
            "seconds": vectorised_seconds,
            "queries_per_second": batch / vectorised_seconds,
            "speedup_vs_serial": serial_seconds / vectorised_seconds,
        },
        "parallel": parallel,
    }


def check_instrumentation(repeats: int, seed: int = 7) -> Dict:
    """Assert the observability layer is inert when not installed.

    Guarantees, all asserted (the benchmark fails loudly if the
    instrumentation ever stops being opt-in):

    1. answers are bit-identical with and without a registry installed,
       and with and without a span collector installed,
    2. an engine without a registry records nothing (a probe registry
       created alongside it stays empty),
    3. the uninstrumented path pays no material overhead versus either
       instrumented path being disabled — the plain run must not be
       slower than the metered or span-traced one beyond timing noise
       (the ``None``-check guard discipline in the hot paths).
    """
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(5_000, 8))
    queries = rng.uniform(0.0, 1.0, size=(16, 8))
    k, n = 5, 4

    plain = BatchBlockADEngine(data)
    probe = MetricsRegistry()  # never installed: must stay empty
    registry = MetricsRegistry()
    metered = BatchBlockADEngine(plain.columns, metrics=registry)
    collector = SpanCollector()
    spanned = BatchBlockADEngine(plain.columns, spans=collector)

    expected = plain.k_n_match_batch(queries, k, n)
    observed = metered.k_n_match_batch(queries, k, n)
    traced = spanned.k_n_match_batch(queries, k, n)
    for result, reference in zip(observed, expected):
        assert result.ids == reference.ids
        assert result.differences == reference.differences
    for result, reference in zip(traced, expected):
        assert result.ids == reference.ids
        assert result.differences == reference.differences
    assert probe.collect() == [], "uninstalled registry must record nothing"
    assert any(
        family.name == "repro_queries_total" for family in registry.collect()
    ), "installed registry must record query events"
    assert collector.traces(), "installed collector must record spans"

    unmetered_seconds = _best_of(
        repeats, lambda: plain.k_n_match_batch(queries, k, n)
    )
    metered_seconds = _best_of(
        repeats, lambda: metered.k_n_match_batch(queries, k, n)
    )
    spanned_seconds = _best_of(
        repeats, lambda: spanned.k_n_match_batch(queries, k, n)
    )
    # The uninstrumented path must not be paying for the instrumentation:
    # it may not be slower than an instrumented path beyond timing noise.
    assert unmetered_seconds <= metered_seconds * 1.25, (
        f"no-registry path slower than metered path: "
        f"{unmetered_seconds:.6f}s vs {metered_seconds:.6f}s"
    )
    assert unmetered_seconds <= spanned_seconds * 1.25, (
        f"no-collector path slower than span-traced path: "
        f"{unmetered_seconds:.6f}s vs {spanned_seconds:.6f}s"
    )
    return {
        "unmetered_seconds": unmetered_seconds,
        "metered_seconds": metered_seconds,
        "metered_overhead": metered_seconds / unmetered_seconds - 1.0,
        "spanned_seconds": spanned_seconds,
        "span_overhead": spanned_seconds / unmetered_seconds - 1.0,
        "answers_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small configuration, < 10 s end to end",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per path (best kept)"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    workers_list = SMOKE_WORKERS if args.smoke else FULL_WORKERS
    repeats = 1 if args.smoke else args.repeats

    report = {
        "benchmark": "bench_batch",
        "mode": "smoke" if args.smoke else "full",
        **run_metadata(backend="thread"),
        "repeats": repeats,
        "results": [],
    }
    print("instrumentation check ...", flush=True)
    report["instrumentation"] = check_instrumentation(max(repeats, 3))
    print(
        f"  metered overhead "
        f"{report['instrumentation']['metered_overhead']:+.1%}, "
        f"span overhead "
        f"{report['instrumentation']['span_overhead']:+.1%} "
        f"(answers identical, uninstrumented path records nothing)",
        flush=True,
    )
    for cardinality, dimensionality, k, n, batch in configs:
        print(
            f"config c={cardinality} d={dimensionality} k={k} n={n} "
            f"batch={batch} ...",
            flush=True,
        )
        entry = bench_config(
            cardinality, dimensionality, k, n, batch, workers_list, repeats
        )
        report["results"].append(entry)
        print(
            f"  serial     {entry['serial']['queries_per_second']:8.1f} q/s\n"
            f"  vectorised {entry['vectorised']['queries_per_second']:8.1f} q/s "
            f"({entry['vectorised']['speedup_vs_serial']:.2f}x)",
            flush=True,
        )
        for workers, stats in entry["parallel"].items():
            print(
                f"  parallel x{workers} {stats['queries_per_second']:6.1f} q/s "
                f"({stats['speedup_vs_serial']:.2f}x)",
                flush=True,
            )

    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
