"""Shared run metadata for benchmark reports.

Every ``BENCH_*.json`` report embeds the facts needed to judge whether
its numbers transfer to another machine: how many cores the run
actually had, which fan-out backend was exercised, and which
multiprocessing start method a process backend would use.  A 4x4
thread sweep on a single-core container and the same sweep on a
16-core workstation produce wildly different speedups — without
``cpu_count`` in the report the difference looks like a regression.

Usage::

    report = {"benchmark": "bench_shard", **run_metadata(backend="thread")}
"""

from __future__ import annotations

import multiprocessing
import os
import platform
import time
from typing import Dict

import numpy as np


def run_metadata(backend: str = "thread") -> Dict:
    """Top-level report fields describing this run's environment.

    ``backend`` names the shard fan-out mode the benchmark exercised
    (``"thread"``, ``"process"``, or ``"thread+process"`` for a
    comparison run).  ``start_method`` records the spawn semantics the
    process backend uses on this platform — always ``"spawn"`` for
    :class:`repro.shard.ShardProcessPool`, recorded per-run so a report
    from a fork-default platform cannot be misread.
    """
    try:
        default_method = multiprocessing.get_start_method(allow_none=True)
    except (ValueError, RuntimeError):  # pragma: no cover - exotic hosts
        default_method = None
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count(),
        "backend": backend,
        "start_method": "spawn",
        "platform_start_method_default": default_method or "unset",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
