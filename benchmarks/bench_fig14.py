"""Benchmark/regeneration of Figure 14 (effect of dimensionality)."""

from conftest import emit, run_once


def test_fig14_dimensionality(benchmark, scale, queries, full_scale):
    from repro.experiments import fig14

    result = run_once(benchmark, lambda: fig14.run(scale=scale, queries=queries))
    emit(result)

    if full_scale:
        # paper: "FKNMatchAD always outperforms the other two techniques"
        for row in result.rows:
            d, scan_t, ad_t, igrid_t = row
            assert ad_t < scan_t, f"AD lost to scan at d={d}"
            assert ad_t < igrid_t, f"AD lost to IGrid at d={d}"
        # every technique's cost grows with dimensionality
        scans = [row[1] for row in result.rows]
        ads = [row[2] for row in result.rows]
        assert scans == sorted(scans)
        assert ads == sorted(ads)
