"""The dimensionality curse of R-tree-family indexes (Sec. 6's premise).

Not a paper figure, but the executable form of the claim that motivates
the paper's whole disk strategy: "R-tree based approaches have been
shown to perform badly with high dimensional data due to too much
overlap between page regions".  A kNN query's node-access fraction
climbs towards 100% as dimensionality grows, at which point the index
is a slower sequential scan.
"""

import numpy as np

from conftest import run_once
from repro.baselines import RTree, SSTree
from repro.data import sample_queries, uniform_dataset

CARDINALITY = 5000
DIMENSIONALITIES = (2, 4, 8, 16, 32)


def _curse_rows(build):
    rows = []
    for d in DIMENSIONALITIES:
        data = uniform_dataset(CARDINALITY, d, seed=d)
        tree = build(data)
        queries = sample_queries(data, 5, seed=d + 1)
        tree.reset_counters()
        for query in queries:
            tree.k_nearest(query, 10)
        fraction = tree.node_accesses / (len(queries) * tree.node_count)
        rows.append((d, tree.node_count, fraction))
    return rows


def _assert_curse(rows):
    fractions = [fraction for _d, _nodes, fraction in rows]
    # Monotone-ish climb with a collapsed top end.
    assert fractions[0] < 0.5
    assert fractions[-1] > 0.9
    assert fractions == sorted(fractions) or max(
        abs(a - b) for a, b in zip(fractions, sorted(fractions))
    ) < 0.05


def test_rtree_dimensionality_curse(benchmark):
    rows = run_once(
        benchmark, lambda: _curse_rows(lambda data: RTree.build(data, 32))
    )
    print("\nR-tree: d -> nodes, kNN node-access fraction")
    for d, nodes, fraction in rows:
        print(f"  {d:3d}  {nodes:5d}  {fraction:.1%}")
    _assert_curse(rows)


def test_sstree_dimensionality_curse(benchmark):
    rows = run_once(
        benchmark, lambda: _curse_rows(lambda data: SSTree.build(data, 32))
    )
    print("\nSS-tree: d -> nodes, kNN node-access fraction")
    for d, nodes, fraction in rows:
        print(f"  {d:3d}  {nodes:5d}  {fraction:.1%}")
    _assert_curse(rows)
