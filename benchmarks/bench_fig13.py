"""Benchmark/regeneration of Figure 13 (scan/AD/IGrid: k and size)."""

from conftest import emit, run_once


def test_fig13_k_and_size(benchmark, scale, queries, full_scale):
    from repro.experiments import fig13

    fig_a, fig_b = run_once(
        benchmark, lambda: fig13.run(scale=scale, queries=queries)
    )
    emit(fig_a, fig_b)

    if full_scale:
        # (a) the paper's ordering at every k: AD < scan < IGrid.
        for row in fig_a.rows:
            k, scan_t, ad_t, igrid_t = row
            assert ad_t < scan_t < igrid_t, f"ordering broken at k={k}"
        # (b) same ordering at every size, all roughly linear in size.
        for row in fig_b.rows:
            size, scan_t, ad_t, igrid_t = row
            assert ad_t < scan_t < igrid_t, f"ordering broken at size={size}"
        sizes = [row[0] for row in fig_b.rows]
        scans = [row[1] for row in fig_b.rows]
        growth = (scans[-1] / scans[0]) / (sizes[-1] / sizes[0])
        assert 0.5 < growth < 2.0  # scan scales ~linearly
