"""Perf-regression gate over the ``BENCH_*.json`` reports.

Every benchmark in this directory writes its results under one shared
schema: a top-level ``benchmark`` name plus nested dicts/lists whose
leaves carry a ``"queries_per_second"`` number.  This script flattens
two such report sets — a *baseline* (e.g. the committed ``BENCH_*.json``
files at the repository root) and a *current* run — into
``benchmark:path`` keyed throughput maps, matches the keys, and fails
when any matched throughput dropped by more than ``--threshold``.

List entries (the ``results`` arrays) are keyed by their scalar
configuration fields (``cardinality=...,k=...``), not by position, so
adding or reordering configurations never mis-pairs measurements —
unmatched keys are reported but do not fail the gate (smoke runs are a
subset of full runs by design).

Usage::

    python benchmarks/regress.py --baseline . --current bench_out
    python benchmarks/regress.py --baseline . --current bench_out \
        --threshold 0.5 --require-match 1
    python benchmarks/regress.py --list .          # show extracted keys

Exit status: 0 when every matched key is within tolerance, 1 when any
key regressed (or ``--require-match`` was not met), 2 on usage errors
(no report files found, unreadable JSON).

The default threshold is deliberately generous: CI runners are shared
and noisy, and this gate exists to catch *collapses* (an accidentally
quadratic merge, instrumentation left always-on), not single-digit
jitter.  Tighten it locally when comparing runs on one quiet machine.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Tuple

#: Fail when current throughput < baseline * (1 - threshold).
DEFAULT_THRESHOLD = 0.5

#: Scalar fields that are measurements or run metadata, never part of a
#: configuration's identity.
_NON_CONFIG_KEYS = {
    "seconds",
    "queries_per_second",
    "speedup_vs_serial",
    "timestamp",
    "cpu_count",
    "numpy",
    "repeats",
    "mode",
    # run_metadata() fields: environment facts, never config identity.
    # "backend" is deliberately NOT here — a thread entry and a process
    # entry of the same configuration are different measurements.
    "start_method",
    "platform_start_method_default",
    "platform",
    "python",
    "point",
    # bench_plan outcome fields: which engine won is a measurement, not
    # identity — a run where best/worst flip must still match keys.
    "best_manual",
    "worst_manual",
    # bench_approx outcome fields: recall and speedup are measurements
    # (floats are already signature-excluded; listed for the record so
    # no future int-ification silently changes config identity).
    "speedup_vs_exact",
    "measured_recall_mean",
    "measured_recall_min",
    "certified_recall_mean",
    "certified_recall_min",
    "speedup_target",
    "recall_target",
}


def _signature(entry: Dict) -> str:
    """Stable identity of a list entry: its scalar config fields."""
    parts = []
    for key in sorted(entry):
        value = entry[key]
        if key in _NON_CONFIG_KEYS or isinstance(value, (bool, dict, list)):
            continue
        if isinstance(value, (int, str)):
            parts.append(f"{key}={value}")
    return ",".join(parts)


def extract_rates(report: Dict) -> Dict[str, float]:
    """Flatten one report into ``benchmark:path -> queries_per_second``."""
    benchmark = report.get("benchmark", "unknown")
    rates: Dict[str, float] = {}

    def walk(node, path: str) -> None:
        if isinstance(node, dict):
            rate = node.get("queries_per_second")
            if isinstance(rate, (int, float)) and not isinstance(rate, bool):
                rates[f"{benchmark}:{path}"] = float(rate)
            for key in sorted(node):
                value = node[key]
                if isinstance(value, (dict, list)):
                    walk(value, f"{path}.{key}" if path else key)
        elif isinstance(node, list):
            for position, item in enumerate(node):
                if isinstance(item, dict):
                    label = _signature(item) or str(position)
                    walk(item, f"{path}[{label}]")

    walk(report, "")
    return rates


def collect_reports(path: str) -> Dict[str, float]:
    """Load every ``BENCH_*.json`` under ``path`` (or the file itself).

    Raises ``ValueError`` when nothing is found or a file is not valid
    JSON — a silent empty baseline would make the gate vacuous.
    """
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    else:
        files = [path]
    if not files:
        raise ValueError(f"no BENCH_*.json files under {path!r}")
    rates: Dict[str, float] = {}
    for name in files:
        try:
            with open(name) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"cannot read report {name!r}: {error}") from error
        if not isinstance(report, dict):
            raise ValueError(f"report {name!r} is not a JSON object")
        rates.update(extract_rates(report))
    return rates


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
) -> Tuple[List[Tuple[str, float, float, float]], List[str], List[str]]:
    """Match keys and classify: (regressions, matched keys, unmatched)."""
    regressions = []
    matched = []
    for key in sorted(baseline):
        if key not in current:
            continue
        matched.append(key)
        base, cur = baseline[key], current[key]
        change = (cur / base - 1.0) if base > 0 else 0.0
        if change < -threshold:
            regressions.append((key, base, cur, change))
    unmatched = sorted(set(baseline) ^ set(current))
    return regressions, matched, unmatched


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        help="directory of BENCH_*.json files (or one file) to compare against",
    )
    parser.add_argument(
        "--current",
        help="directory of BENCH_*.json files (or one file) from the new run",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated q/s drop as a fraction "
        f"(default {DEFAULT_THRESHOLD}: fail below "
        f"{1 - DEFAULT_THRESHOLD:.0%} of baseline)",
    )
    parser.add_argument(
        "--require-match",
        type=int,
        default=0,
        metavar="N",
        help="fail unless at least N keys matched between the two sets "
        "(guards against a vacuously green comparison)",
    )
    parser.add_argument(
        "--list",
        metavar="PATH",
        help="print the extracted throughput keys for PATH and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        try:
            rates = collect_reports(args.list)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for key in sorted(rates):
            print(f"{rates[key]:12.1f} q/s  {key}")
        print(f"{len(rates)} throughput keys")
        return 0

    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or use --list)")
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be a fraction in (0, 1)")

    try:
        baseline = collect_reports(args.baseline)
        current = collect_reports(args.current)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    regressions, matched, unmatched = compare(
        baseline, current, args.threshold
    )

    for key in matched:
        base, cur = baseline[key], current[key]
        change = (cur / base - 1.0) if base > 0 else 0.0
        flag = "REGRESSED" if change < -args.threshold else "ok"
        print(
            f"{flag:9s} {key}\n"
            f"          baseline {base:10.1f} q/s   "
            f"current {cur:10.1f} q/s   ({change:+.1%})"
        )
    for key in unmatched:
        side = "baseline" if key in baseline else "current"
        print(f"unmatched ({side} only) {key}")
    print(
        f"{len(matched)} matched, {len(unmatched)} unmatched, "
        f"{len(regressions)} regressed (threshold {args.threshold:.0%})"
    )

    if len(matched) < args.require_match:
        print(
            f"error: only {len(matched)} matched keys; "
            f"--require-match {args.require_match} not met",
            file=sys.stderr,
        )
        return 1
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
